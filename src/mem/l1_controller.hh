/**
 * @file
 * First-level data cache controller and the snooping coherence
 * fabric that connects the L1s, the L2 banks, and the memory channel
 * over the hierarchical interconnect of Figure 1.
 *
 * Coherence follows the paper's protocol: MESI write-invalidate,
 * with requests first broadcast on the 4-core cluster bus and, when
 * they cannot be satisfied within the cluster, broadcast to all other
 * clusters over the global crossbar in parallel with the L2 lookup.
 * Snoops occupy the snooped data cache for one cycle, stalling its
 * core. Stores are buffered (weak consistency); non-allocating
 * "Prepare For Store" requests take the upgrade path so no refill is
 * read from memory.
 *
 * The same controller class, with coherence disabled, implements the
 * streaming model's small 8 KB cache for stack/global data.
 */

#ifndef CMPMEM_MEM_L1_CONTROLLER_HH
#define CMPMEM_MEM_L1_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "check/coherence_checker.hh"
#include "mem/cache_array.hh"
#include "mem/dram.hh"
#include "mem/interconnect.hh"
#include "mem/l2_cache.hh"
#include "mem/mshr.hh"
#include "mem/store_buffer.hh"
#include "sim/callback.hh"
#include "sim/diagnosable.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace cmpmem
{

class FaultInjector;
class L1Controller;
class Prefetcher;

/** Classification of first-level accesses (for stats and energy). */
enum class AccessKind : std::uint8_t
{
    Load,
    Store,
    StorePfs, ///< non-allocating store (MIPS32 PrepareForStore style)
    Atomic,
    Prefetch,
};

/** Per-L1 counters consumed by the harness and the energy model. */
struct L1Counters
{
    std::uint64_t loadHits = 0;
    std::uint64_t loadMisses = 0;
    std::uint64_t storeHits = 0;
    std::uint64_t storeMisses = 0;   ///< includes upgrades from S
    std::uint64_t storeMerged = 0;   ///< coalesced into a pending entry
    std::uint64_t pfsStores = 0;     ///< misses satisfied without refill
    std::uint64_t atomicOps = 0;
    std::uint64_t writebacks = 0;    ///< dirty victims pushed to L2
    std::uint64_t fills = 0;
    std::uint64_t snoopsReceived = 0;
    std::uint64_t invalidationsReceived = 0;
    std::uint64_t suppliesProvided = 0; ///< cache-to-cache transfers
    std::uint64_t prefetchesIssued = 0;
    std::uint64_t prefetchesUseful = 0;

    /**
     * Hits satisfied by the per-core line-hit micro path (a subset
     * of loadHits/storeHits, never added on top of them). Host-time
     * telemetry only; no simulated behaviour depends on it.
     */
    std::uint64_t fastpathHits = 0;

    std::uint64_t demandAccesses() const
    {
        return loadHits + loadMisses + storeHits + storeMisses +
               storeMerged + atomicOps;
    }
    std::uint64_t demandMisses() const { return loadMisses + storeMisses; }
};

/** Fabric-level counters (traffic and coherence activity). */
struct FabricCounters
{
    std::uint64_t clusterRequests = 0;
    std::uint64_t globalRequests = 0;
    std::uint64_t snoopProbes = 0;
    std::uint64_t localSupplies = 0;
    std::uint64_t remoteSupplies = 0;
    std::uint64_t upgrades = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t uncoreReads = 0;
    std::uint64_t uncoreWrites = 0;
    std::uint64_t remoteAtomics = 0;
};

/**
 * The snooping coherence fabric / uncore.
 *
 * Owns the cluster buses and the crossbar; references the shared L2
 * and the DRAM channel. All transaction timing walks live here, so
 * L1 controllers and DMA engines stay simple clients.
 */
class CoherenceFabric : public Diagnosable
{
  public:
    CoherenceFabric(const InterconnectConfig &net, int cores,
                    int cluster_size, L2Cache &l2, DramChannel &dram);

    /** L1s register in core-id order (CC model only). */
    void registerL1(L1Controller *l1);

    /** Attach the runtime coherence checker (null to detach). */
    void attachChecker(CoherenceChecker *c) { checker = c; }

    /**
     * Attach the system fault injector (null to detach). Every bus
     * and crossbar transfer then samples the NACK model: a NACKed
     * transfer backs off linearly and re-arbitrates, up to
     * netMaxRetries before SimErrorKind::Fault.
     */
    void setFaultInjector(FaultInjector *fi) { faults = fi; }

    std::string diagName() const override { return "fabric"; }
    std::string diagnose() const override;

    int clusterOf(int core_id) const { return core_id / clusterSize; }
    int clusters() const { return numClusters; }
    int cores() const { return numCores; }

    /** Result of a line fetch: when, and with what final state. */
    struct FetchResult
    {
        Tick done = 0;
        bool othersRetainCopy = false; ///< install S rather than E
    };

    /**
     * Fetch a line for core @p core_id starting at @p t.
     *
     * @param exclusive request ownership (read-for-ownership).
     * @param coherent whether the requester participates in
     *        coherence (false for the streaming model's 8 KB cache:
     *        the walk skips all snooping).
     */
    FetchResult fetchLine(Tick t, int core_id, Addr line, bool exclusive,
                          bool coherent);

    /**
     * Ownership upgrade (S -> M) or PFS allocate: broadcast
     * invalidations only, no data transfer, no memory read.
     */
    Tick upgradeLine(Tick t, int core_id, Addr line);

    /** Push a dirty victim line to the L2 (fire-and-forget timing). */
    void writebackLine(Tick t, int core_id, Addr line);

    /**
     * Uncore read/write used by DMA engines and I-cache refills:
     * cluster bus -> crossbar -> L2 (-> DRAM).
     * @return completion tick (data at the cluster for reads).
     */
    Tick uncoreRead(Tick t, int cluster, Addr line, std::uint32_t bytes);
    Tick uncoreWrite(Tick t, int cluster, Addr line, std::uint32_t bytes,
                     bool full_line);

    /**
     * Streaming-model atomic executed at the shared L2 (Cell-style
     * atomic unit): request to the L2 bank holding @p line and
     * response back.
     */
    Tick remoteAtomic(Tick t, int cluster, Addr line);

    LocalBus &bus(int cluster) { return *buses.at(cluster); }
    Crossbar &crossbar() { return xbar; }
    L2Cache &l2() { return l2cache; }
    DramChannel &dram() { return dramChannel; }

    const FabricCounters &counters() const { return stats; }
    const InterconnectConfig &netConfig() const { return net; }

  private:
    /**
     * Snoop every coherent L1 in @p cluster except @p requester.
     * @return the id of a core that can supply the line, or -1;
     *         dirty owners are recorded in @p supplier_was_dirty,
     *         and @p supplier_was_owner reports an M/E (hence
     *         provably unique) copy.
     */
    int snoopCluster(int cluster, int requester, Addr line,
                     bool invalidate, bool &supplier_was_dirty,
                     bool &supplier_was_owner, bool &others_retain);

    /**
     * Fault-aware wrappers around the raw interconnect resources.
     * Without an injector each is exactly one transfer call, so the
     * fault-free walk is unchanged; with one, NACKed attempts retry
     * with linear backoff.
     */
    Tick busXfer(Tick t, int cluster, std::uint32_t bytes);
    Tick xbarSend(Tick t, int cluster, std::uint32_t bytes);
    Tick xbarDeliver(Tick t, int cluster, std::uint32_t bytes);

    InterconnectConfig net;
    int numCores;
    int clusterSize;
    int numClusters;
    L2Cache &l2cache;
    DramChannel &dramChannel;
    std::vector<std::unique_ptr<LocalBus>> buses;
    Crossbar xbar;
    std::vector<L1Controller *> l1s;
    CoherenceChecker *checker = nullptr;
    FaultInjector *faults = nullptr;
    FabricCounters stats;
};

/** Configuration for one first-level cache controller. */
struct L1Config
{
    CacheGeometry geom{32 * 1024, 2, 32};
    bool coherent = true;
    std::size_t mshrs = 64;
    std::size_t storeBufferEntries = 8;
    Tick cyclePeriod = 1250;  ///< owning core's clock period
    Cycles hitLatency = 1;
    Cycles atomicLatency = 3; ///< extra cycles for the RMW beat

    /**
     * Enable the per-core "last line, permission" micro path
     * (microLoad/microStore). Purely a host-time optimization with
     * bit-identical simulated behaviour; the switch exists so golden
     * regressions can pin both configurations.
     */
    bool fastPath = true;

    /** Replacement policy of the tag array (DESIGN.md §15). */
    ReplacementConfig repl;
};

/**
 * One first-level data cache.
 *
 * The controller is callback-based: operations that complete
 * immediately return true; operations that must wait invoke the
 * supplied callback with the completion tick. The owning Core turns
 * those callbacks into coroutine resumptions and stall accounting.
 */
class L1Controller : public Diagnosable
{
  public:
    using Callback = TickCallback;

    L1Controller(int core_id, const L1Config &cfg, EventQueue &eq,
                 CoherenceFabric &fabric);

    /** Attach a hardware prefetcher (CC model, when enabled). */
    void setPrefetcher(Prefetcher *pf) { prefetcher = pf; }

    /**
     * Attach the runtime coherence checker: registers this cache's
     * tags with it and installs MSHR/store-buffer observers. Hooks
     * are pointer-guarded and never touch the event queue, so the
     * simulated timing is identical with or without a checker.
     */
    void attachChecker(CoherenceChecker *c);

    /**
     * Test-only: overwrite a line's MESI state behind the checker's
     * back (allocating a frame if needed), to validate that the
     * checker's audit catches illegal states. Never used by the
     * simulator proper.
     */
    void forgeStateForTest(Addr addr, MesiState state);

    /**
     * Issue a load at tick @p t.
     * @return true on hit (completes in hitLatency); false when the
     *         core must suspend until @p cb fires.
     */
    bool load(Tick t, Addr addr, Callback cb);

    /**
     * Issue a store at tick @p t. Returns true when the store retires
     * into the cache or store buffer immediately; false when the
     * store buffer is full and @p cb will fire once the store has
     * been accepted.
     * @param pfs non-allocating store: a miss allocates and validates
     *        the line without reading memory.
     */
    bool store(Tick t, Addr addr, bool pfs, Callback cb);

    //
    // Per-core line-hit micro path (DESIGN.md §13, layer 3).
    //
    // A one-entry "last line, permission" cache over the full
    // load()/store() probe. The entry is populated only on a full
    // hit to a resident, non-prefetched line with no store buffered
    // (so the full path's extra work — prefetched-flag handling,
    // store forwarding, state transitions — can never be needed on a
    // micro hit), and is invalidated whenever any of its premises
    // could change: frame re-tag on eviction, snoop on the line,
    // store-buffer insert/drain for the line, end-of-run drain,
    // quantum flush, and forged test states. A micro hit therefore
    // performs exactly the accounting the full path would: the hit
    // counter, the LRU touch, and (for stores, where the line is
    // already Modified) the checker's golden-data refresh.
    //

    /** Micro-path load probe: counts the hit and returns true. */
    bool
    microLoad(Addr addr)
    {
        if (array.lineAddr(addr) != micro.addr)
            return false;
        ++stats.loadHits;
        ++stats.fastpathHits;
        array.touch(*micro.line);
        return true;
    }

    /** Micro-path store probe; valid only for Modified lines. */
    bool
    microStore(Tick t, Addr addr)
    {
        if (array.lineAddr(addr) != micro.addr || !micro.storeOk)
            return false;
        // Same golden-copy refresh as the full path; the M -> M
        // transition itself is elided there too.
        if (checker)
            checker->onStoreData(t, id, micro.addr);
        ++stats.storeHits;
        ++stats.fastpathHits;
        array.touch(*micro.line);
        return true;
    }

    /** Drop the micro-path entry (always safe, only conservative). */
    void microInvalidate() { micro = MicroEntry{}; }

    /** Atomic read-modify-write; always completes via @p cb. */
    void atomic(Tick t, Addr addr, Callback cb);

    /**
     * Software (bulk) prefetch of one line — the hybrid "bulk
     * transfer primitive for cache-based systems" of the paper's
     * Section 7. Fire-and-forget; duplicates and full MSHRs are
     * dropped silently, exactly like a hardware prefetch.
     */
    void softwarePrefetch(Tick t, Addr addr);

    /** Snoop from the fabric. */
    struct SnoopResult
    {
        bool had = false;
        bool dirty = false;
        bool owned = false; ///< was Modified or Exclusive (unique)
    };
    SnoopResult snoop(Addr line, bool invalidate);

    /**
     * Account for dirty lines at the end of a run (write-backs that
     * would eventually happen) so traffic totals are drain-invariant.
     */
    std::uint64_t drainDirty(Tick t);

    /** Consume snoop-induced stall cycles accumulated since last call. */
    Cycles takeSnoopStallCycles();

    const L1Counters &counters() const { return stats; }
    const L1Config &config() const { return cfg; }

    /** Host heap allocations on the miss path (0 in steady state). */
    std::uint64_t missPathHostAllocs() const { return mshr.hostAllocs(); }

    const CacheArray &tags() const { return array; }
    int coreId() const { return id; }

    std::string diagName() const override;
    std::string diagnose() const override;

    /** Line flag marking frames installed by the prefetcher. */
    static constexpr std::uint8_t flagPrefetched = 0x1;

  private:
    friend class CoherenceFabric;

    /** Start a fill transaction for @p line. */
    void startFill(Tick t, Addr line, bool exclusive, AccessKind kind);

    /** Issue a single prefetch fill if the line is not already here. */
    void issuePrefetchLine(Tick t, Addr pf_line);

    /** Install a fetched line; evicts and writes back as needed. */
    void install(Tick t, Addr line, MesiState state, bool prefetched,
                 CoherenceChecker::Cause cause =
                     CoherenceChecker::Cause::Fill);

    /**
     * Schedule the canonical transaction-completion event at
     * @p done: install() the line (which also covers the
     * upgrade-landed-while-present case), release the MSHR entry,
     * and optionally drain the store buffer for the line. Every
     * fill/upgrade/PFS completion funnels through here so the
     * capture stays within the inline-callback bound.
     */
    void scheduleLineDone(Tick done, Addr line, MesiState state,
                          bool prefetched, CoherenceChecker::Cause cause,
                          bool completeStoreBuffer);

    /** Issue/chain an ownership upgrade for a buffered store. */
    void ensureOwnership(Tick t, Addr line);

    /**
     * Complete an atomic once its line is resident: silently claim
     * M from E/M, or issue a real upgrade when the atomic merged
     * onto a non-exclusive fill and the line landed Shared. The
     * requester's callback lives in the `atomicCb` member slot (an
     * in-order core has at most one atomic in flight), so the MSHR
     * waiters this chains through capture only [this, line].
     */
    void atomicFinish(Tick t, Addr line);

    /**
     * Re-issue the store parked by a full store buffer (`parked` /
     * `parkedCb` member slots — one per core, since only the owning
     * in-order core can block on its buffer) once a slot frees.
     */
    void retryParkedStore(Tick when);

    /** Start a PFS allocate (invalidate-only) transaction. */
    void startPfsAllocate(Tick t, Addr line);

    void issuePrefetches(Tick t, Addr miss_line);

    /** The micro path's cached translation (see the block above). */
    struct MicroEntry
    {
        CacheArray::Line *line = nullptr;
        Addr addr = ~Addr(0); ///< line address; ~0 = empty
        bool storeOk = false; ///< line is Modified
    };

    /**
     * Adopt @p l as the micro entry after a full-path hit, unless
     * the fast path is disabled or the line is marked prefetched
     * (its first touch must run the full path's flag handling).
     */
    void
    microAdopt(CacheArray::Line *l, Addr line)
    {
        if (!cfg.fastPath || (l->flags & flagPrefetched) != 0)
            return;
        micro.line = l;
        micro.addr = line;
        micro.storeOk = l->state == MesiState::Modified;
    }

    int id;
    L1Config cfg;
    EventQueue &eq;
    CoherenceFabric &fabric;
    CacheArray array;
    MshrFile mshr;
    StoreBuffer sb;
    Prefetcher *prefetcher = nullptr;
    CoherenceChecker *checker = nullptr;
    Cycles snoopStallCycles = 0;
    MicroEntry micro;

    /**
     * Member continuation slots (DESIGN.md §18). The old code nested
     * the requester's Callback inside the waiter lambdas it parked in
     * the MSHR / store buffer, which both forced a heap-allocating
     * callable and re-moved the capture on every hop. An in-order
     * core has at most one outstanding atomic and can block on at
     * most one full-buffer store, so each gets a single member slot
     * and the parked waiters capture only [this] (+ line).
     */
    Callback atomicCb;
    struct ParkedStore
    {
        Tick t = 0;
        Addr addr = 0;
        bool pfs = false;
    } parked;
    Callback parkedCb;

    L1Counters stats;
};

} // namespace cmpmem

#endif // CMPMEM_MEM_L1_CONTROLLER_HH
