#include "mem/resource.hh"

#include <algorithm>
#include <cassert>
#include <utility>

namespace cmpmem
{

Resource::Resource(std::string name) : label(std::move(name)) {}

void
Resource::prune(Tick earliest)
{
    // Transactions are issued nearly in time order (bounded by the
    // core quantum plus transaction depth), so reservations ending
    // well before the current request can never conflict again.
    if (earliest < pruneHorizon)
        return;
    Tick cutoff = earliest - pruneHorizon;
    while (!busyList.empty() && busyList.front().end < cutoff)
        busyList.pop_front();
}

Tick
Resource::acquire(Tick earliest, Tick occupancy)
{
    ++count;
    busy += occupancy;
    prune(earliest);

    if (occupancy == 0)
        return std::max(earliest, Tick(0));

    // First-fit gap search: transactions may reserve future slots
    // (e.g. a response beat) without blocking the idle time before
    // them.
    Tick start = earliest;
    auto pos = busyList.begin();
    for (; pos != busyList.end(); ++pos) {
        if (pos->end <= start)
            continue;
        if (pos->start >= start + occupancy)
            break; // gap before this interval fits
        start = pos->end;
    }
    waited += start - earliest;

    // Insert (start, start+occupancy) before pos, merging neighbours.
    Interval iv{start, start + occupancy};
    auto it = busyList.insert(pos, iv);
    if (it != busyList.begin()) {
        auto prev = std::prev(it);
        if (prev->end == it->start) {
            prev->end = it->end;
            it = busyList.erase(it);
            it = std::prev(it);
        }
    }
    auto next = std::next(it);
    if (next != busyList.end() && it->end == next->start) {
        it->end = next->end;
        busyList.erase(next);
    }
    return start;
}

Tick
Resource::nextFree() const
{
    return busyList.empty() ? 0 : busyList.back().end;
}

void
Resource::reset()
{
    busyList.clear();
    busy = 0;
    waited = 0;
    count = 0;
}

ChannelResource::ChannelResource(std::string name, std::uint32_t width_bytes,
                                 Tick beat_ticks)
    : Resource(std::move(name)), width(width_bytes), beat(beat_ticks)
{
    assert(width > 0 && beat > 0);
}

Tick
ChannelResource::transferTicks(std::uint64_t bytes) const
{
    std::uint64_t beats = (bytes + width - 1) / width;
    return beats * beat;
}

Tick
ChannelResource::acquireTransfer(Tick earliest, std::uint64_t bytes)
{
    totalBytes += bytes;
    return acquire(earliest, transferTicks(bytes));
}

} // namespace cmpmem
