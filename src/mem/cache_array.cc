#include "mem/cache_array.hh"

#include <cassert>

#include "sim/sim_error.hh"

namespace cmpmem
{

namespace
{
bool
isPow2(std::uint32_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

std::uint32_t
log2Exact(std::uint32_t x)
{
    std::uint32_t shift = 0;
    while ((std::uint32_t(1) << shift) < x)
        ++shift;
    return shift;
}
} // namespace

CacheArray::CacheArray(const CacheGeometry &g, const ReplacementConfig &r)
    : geom(g), repl(r), rng(r.seed)
{
    if (repl.bipThrottle == 0)
        throwSimError(SimErrorKind::Config,
                      "BIP throttle must be at least 1");
    // Each field must be a power of two individually: pow2 sets can
    // emerge from a non-pow2 size/assoc pair only via the silently
    // truncating division in sets(), which would index a different
    // cache than the one configured.
    if (!isPow2(geom.sizeBytes) || !isPow2(geom.assoc) ||
        !isPow2(geom.lineBytes) ||
        geom.sizeBytes < geom.assoc * geom.lineBytes)
        throwSimError(SimErrorKind::Config,
                      "cache geometry must have power-of-two size, "
                      "associativity, and line size, with at least one "
                      "set (size=%u assoc=%u line=%u)",
                      geom.sizeBytes, geom.assoc, geom.lineBytes);
    lineShift = log2Exact(geom.lineBytes);
    setMask = geom.sets() - 1;
    assocShift = log2Exact(geom.assoc);
    lines.resize(std::size_t(geom.sets()) * geom.assoc);
    mruWay.assign(geom.sets(), 0);
}

CacheArray::Line *
CacheArray::lookup(Addr addr)
{
    Addr la = lineAddr(addr);
    std::size_t si = setIndex(addr);
    Line *set = &lines[si << assocShift];

    // Probe the set's MRU way first: back-to-back accesses to the
    // same set overwhelmingly hit the way last touched.
    std::uint32_t h = mruWay[si];
    if (set[h].valid() && set[h].tag == la)
        return &set[h];

    for (std::uint32_t w = 0; w < geom.assoc; ++w) {
        if (w != h && set[w].valid() && set[w].tag == la) {
            mruWay[si] = w;
            return &set[w];
        }
    }
    return nullptr;
}

const CacheArray::Line *
CacheArray::peek(Addr addr) const
{
    Addr la = lineAddr(addr);
    const Line *set = &lines[std::size_t(setIndex(addr)) << assocShift];
    for (std::uint32_t w = 0; w < geom.assoc; ++w) {
        if (set[w].valid() && set[w].tag == la)
            return &set[w];
    }
    return nullptr;
}

template <typename Traits>
CacheArray::Line &
CacheArray::allocateImpl(Addr addr, Victim &victim)
{
    assert(lookup(addr) == nullptr && "allocating a duplicate tag");

    std::uint32_t si = setIndex(addr);
    Line *set = &lines[std::size_t(si) << assocShift];
    std::uint32_t way = Traits::victimWay(set, geom.assoc);
    Line *pick = &set[way];

    victim.valid = pick->valid();
    victim.dirty = pick->dirty();
    victim.addr = pick->tag;
    victim.state = pick->state;

    pick->tag = lineAddr(addr);
    pick->state = MesiState::Invalid;
    pick->flags = 0;
    pick->lruStamp = Traits::insertionStamp(lruClock, rng, repl);
    // The hit hint always tracks the fill (host-only: the demand
    // that triggered it is about to access this way), even when the
    // policy inserts at the recency-stack bottom.
    mruWay[si] = way;
    return *pick;
}

CacheArray::Line &
CacheArray::allocate(Addr addr, Victim &victim)
{
    switch (repl.policy) {
      case ReplacementPolicy::LRU:
        return allocateImpl<LruTraits>(addr, victim);
      case ReplacementPolicy::MIP:
        return allocateImpl<MipTraits>(addr, victim);
      case ReplacementPolicy::LIP:
        return allocateImpl<LipTraits>(addr, victim);
      case ReplacementPolicy::BIP:
        return allocateImpl<BipTraits>(addr, victim);
    }
    return allocateImpl<LruTraits>(addr, victim); // unreachable
}

void
CacheArray::invalidateAll()
{
    for (auto &line : lines)
        line.state = MesiState::Invalid;
}

std::size_t
CacheArray::validLines() const
{
    std::size_t n = 0;
    for (const auto &line : lines)
        n += line.valid();
    return n;
}

} // namespace cmpmem
