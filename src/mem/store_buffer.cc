#include "mem/store_buffer.hh"

#include <cassert>
#include <utility>

#include "sim/log.hh"

namespace cmpmem
{

StoreBuffer::StoreBuffer(std::size_t capacity) : cap(capacity)
{
    lines.reserve(cap);
}

void
StoreBuffer::insert(Addr line)
{
    assert(!full());
    assert(!contains(line));
    lines.push_back(line);
    ++numInserts;
    if (obs)
        obs(true, line);
}

void
StoreBuffer::complete(Addr line, Tick when)
{
    auto it = std::find(lines.begin(), lines.end(), line);
    assert(it != lines.end());
    // Swap-remove: the set is unordered, diagnose() sorts its copy.
    *it = lines.back();
    lines.pop_back();
    if (drainHook)
        drainHook(line);
    if (obs)
        obs(false, line);
    if (spaceWaiter) {
        SpaceWaiter w = std::move(spaceWaiter);
        spaceWaiter = nullptr;
        w(when);
    }
}

std::string
StoreBuffer::diagnose() const
{
    std::vector<Addr> pending(lines.begin(), lines.end());
    std::sort(pending.begin(), pending.end());
    std::string out;
    for (Addr line : pending) {
        if (!out.empty())
            out += '\n';
        out += strformat("store-buffer: line 0x%llx pending",
                         (unsigned long long)line);
    }
    if (spaceWaiter) {
        if (!out.empty())
            out += '\n';
        out += "store-buffer: full, core blocked waiting for a slot";
    }
    return out;
}

void
StoreBuffer::waitForSpace(SpaceWaiter waiter)
{
    assert(full());
    assert(!spaceWaiter && "only one core can wait on its own buffer");
    ++numFullStalls;
    spaceWaiter = std::move(waiter);
}

} // namespace cmpmem
