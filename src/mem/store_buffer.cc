#include "mem/store_buffer.hh"

#include <cassert>
#include <utility>

namespace cmpmem
{

StoreBuffer::StoreBuffer(std::size_t capacity) : cap(capacity) {}

void
StoreBuffer::insert(Addr line)
{
    assert(!full());
    assert(!contains(line));
    lines.emplace(line, true);
    ++numInserts;
    if (obs)
        obs(true, line);
}

void
StoreBuffer::complete(Addr line, Tick when)
{
    auto it = lines.find(line);
    assert(it != lines.end());
    lines.erase(it);
    if (obs)
        obs(false, line);
    if (spaceWaiter) {
        SpaceWaiter w = std::move(spaceWaiter);
        spaceWaiter = nullptr;
        w(when);
    }
}

void
StoreBuffer::waitForSpace(SpaceWaiter waiter)
{
    assert(full());
    assert(!spaceWaiter && "only one core can wait on its own buffer");
    ++numFullStalls;
    spaceWaiter = std::move(waiter);
}

} // namespace cmpmem
