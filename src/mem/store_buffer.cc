#include "mem/store_buffer.hh"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

#include "sim/log.hh"

namespace cmpmem
{

StoreBuffer::StoreBuffer(std::size_t capacity) : cap(capacity) {}

void
StoreBuffer::insert(Addr line)
{
    assert(!full());
    assert(!contains(line));
    lines.emplace(line, true);
    ++numInserts;
    if (obs)
        obs(true, line);
}

void
StoreBuffer::complete(Addr line, Tick when)
{
    auto it = lines.find(line);
    assert(it != lines.end());
    lines.erase(it);
    if (drainHook)
        drainHook(line);
    if (obs)
        obs(false, line);
    if (spaceWaiter) {
        SpaceWaiter w = std::move(spaceWaiter);
        spaceWaiter = nullptr;
        w(when);
    }
}

std::string
StoreBuffer::diagnose() const
{
    std::vector<Addr> pending;
    pending.reserve(lines.size());
    for (const auto &kv : lines)
        pending.push_back(kv.first);
    std::sort(pending.begin(), pending.end());
    std::string out;
    for (Addr line : pending) {
        if (!out.empty())
            out += '\n';
        out += strformat("store-buffer: line 0x%llx pending",
                         (unsigned long long)line);
    }
    if (spaceWaiter) {
        if (!out.empty())
            out += '\n';
        out += "store-buffer: full, core blocked waiting for a slot";
    }
    return out;
}

void
StoreBuffer::waitForSpace(SpaceWaiter waiter)
{
    assert(full());
    assert(!spaceWaiter && "only one core can wait on its own buffer");
    ++numFullStalls;
    spaceWaiter = std::move(waiter);
}

} // namespace cmpmem
