/**
 * @file
 * Set-associative tag/state array with trait-dispatched replacement
 * (true LRU by default; see mem/cache_policy.hh for the policy
 * space).
 *
 * cmpmem caches carry timing and coherence *metadata* only; data
 * values live in FunctionalMemory (see functional_memory.hh for the
 * rationale). The array is shared by L1 D-caches, the streaming
 * model's small 8 KB caches, I-cache footprint modelling, and the L2.
 */

#ifndef CMPMEM_MEM_CACHE_ARRAY_HH
#define CMPMEM_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <vector>

#include "mem/cache_policy.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace cmpmem
{

/** MESI coherence states. Non-coherent caches use only I/E/M. */
enum class MesiState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

inline const char *
to_string(MesiState s)
{
    switch (s) {
      case MesiState::Invalid: return "I";
      case MesiState::Shared: return "S";
      case MesiState::Exclusive: return "E";
      case MesiState::Modified: return "M";
    }
    return "?";
}

/**
 * Geometry and identity of a cache array.
 *
 * Every field must be a power of two (CacheArray's constructor
 * raises SimErrorKind::Config otherwise), so sets() is exact and
 * set selection reduces to a shift and a mask.
 */
struct CacheGeometry
{
    std::uint32_t sizeBytes = 32 * 1024;
    std::uint32_t assoc = 2;
    std::uint32_t lineBytes = 32;

    std::uint32_t sets() const { return sizeBytes / (assoc * lineBytes); }
};

/**
 * The tag/state array.
 */
class CacheArray
{
  public:
    struct Line
    {
        Addr tag = 0; ///< line-aligned address of the cached block
        MesiState state = MesiState::Invalid;
        std::uint8_t flags = 0; ///< client-defined (e.g. prefetched)
        std::uint64_t lruStamp = 0;

        bool valid() const { return state != MesiState::Invalid; }
        bool dirty() const { return state == MesiState::Modified; }
    };

    /** Description of a line displaced by allocate(). */
    struct Victim
    {
        bool valid = false;
        bool dirty = false;
        Addr addr = 0;
        MesiState state = MesiState::Invalid; ///< state when displaced
    };

    explicit CacheArray(const CacheGeometry &geom,
                        const ReplacementConfig &repl = {});

    const CacheGeometry &geometry() const { return geom; }
    const ReplacementConfig &replacement() const { return repl; }

    /** Line-align an address. */
    Addr lineAddr(Addr a) const { return a & ~Addr(geom.lineBytes - 1); }

    /**
     * Find the line holding @p addr, or nullptr. Never updates
     * replacement recency — that happens only through an explicit
     * touch() — but the non-const overload does refresh the set's
     * MRU-way hit hint (a host-only accelerator; see mruWay below).
     * Callers on timing paths decide whether the probe counts as a
     * use (demand access: lookup + touch) or not (snoop: lookup
     * alone); observers that must not perturb even the hint use
     * peek().
     */
    Line *lookup(Addr addr);

    /** Const probe; an alias of peek() (no side effects at all). */
    const Line *lookup(Addr addr) const { return peek(addr); }

    /**
     * Side-effect-free probe: find the line holding @p addr without
     * touching recency state *or* the MRU-way hint. For observers —
     * checker audits, test assertions, diagnostics — so that no
     * caller can update recency (or any other array state) by
     * accident.
     */
    const Line *peek(Addr addr) const;

    /**
     * Mark @p line most recently used. Also records the line's way
     * as the set's hit hint, so the next lookup probes it first.
     *
     * Deliberately policy-agnostic: every supported replacement
     * policy (cache_policy.hh) promotes to MRU on a demand hit, so
     * the hit path — including the memory-access fast path built on
     * this inline function — never pays a policy dispatch.
     */
    void
    touch(Line &line)
    {
        static_assert(LruEvictionBase::promoteOnHit,
                      "touch() assumes hit promotion is policy-agnostic");
        line.lruStamp = ++lruClock;
        std::size_t idx = std::size_t(&line - lines.data());
        mruWay[idx >> assocShift] =
            std::uint32_t(idx) & (geom.assoc - 1);
    }

    /**
     * Claim a frame for @p addr, evicting a victim chosen by the
     * configured replacement policy if necessary (LRU way under
     * every supported policy). The displaced line (if any) is
     * described in @p victim. The returned line is re-tagged to
     * @p addr, left Invalid (the caller sets the state), and stamped
     * by the policy's insertion rule — MRU for LRU/MIP, stack bottom
     * for LIP, bimodal for BIP.
     *
     * @pre lookup(addr) == nullptr (no duplicate tags).
     */
    Line &allocate(Addr addr, Victim &victim);

    /** Invalidate every line (used between runs in tests). */
    void invalidateAll();

    /** Count of currently valid lines. */
    std::size_t validLines() const;

    /**
     * Invoke @p fn with the address of every Modified line and
     * downgrade it to Exclusive (clean). Used by end-of-run drains.
     * @return the number of dirty lines visited.
     */
    template <typename Fn>
    std::size_t
    forEachDirty(Fn &&fn)
    {
        std::size_t n = 0;
        for (auto &line : lines) {
            if (line.state == MesiState::Modified) {
                fn(line.tag);
                line.state = MesiState::Exclusive;
                ++n;
            }
        }
        return n;
    }

    /** Invoke @p fn with every valid line, read-only (checker audits). */
    template <typename Fn>
    void
    forEachValid(Fn &&fn) const
    {
        for (const auto &line : lines) {
            if (line.valid())
                fn(line);
        }
    }

  private:
    std::uint32_t
    setIndex(Addr addr) const
    {
        return std::uint32_t(addr >> lineShift) & setMask;
    }

    /** allocate() body, instantiated per policy trait. */
    template <typename Traits>
    Line &allocateImpl(Addr addr, Victim &victim);

    CacheGeometry geom;
    ReplacementConfig repl;
    Rng rng; ///< drawn only by BIP's bimodal insertion choice
    std::uint32_t lineShift = 0;  ///< log2(lineBytes)
    std::uint32_t setMask = 0;    ///< sets - 1
    std::uint32_t assocShift = 0; ///< log2(assoc)
    std::vector<Line> lines; ///< sets * assoc, set-major
    /**
     * Per-set MRU-way hit hint, probed first by lookup(). Purely a
     * host-time optimization: a stale hint only costs the probe,
     * never a wrong result (the tag is always re-validated).
     */
    std::vector<std::uint32_t> mruWay;
    std::uint64_t lruClock = 0;
};

} // namespace cmpmem

#endif // CMPMEM_MEM_CACHE_ARRAY_HH
