/**
 * @file
 * Off-chip memory channel: bandwidth-limited, fixed random-access
 * latency, with read/write traffic accounting (the source of the
 * paper's Figures 3, 8 and 9 and the DRAM component of Figure 4).
 */

#ifndef CMPMEM_MEM_DRAM_HH
#define CMPMEM_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "mem/resource.hh"
#include "sim/types.hh"

namespace cmpmem
{

class FaultInjector;

/** Configuration matching the paper's Table 2 memory channel row. */
struct DramConfig
{
    /** Channel bandwidth in GB/s: 1.6, 3.2, 6.4 or 12.8. */
    double bandwidthGBps = 3.2;

    /** Random access latency. */
    Tick accessLatency = 70 * ticksPerNs;

    /** Transfer granule; the channel moves whole granules. */
    std::uint32_t granuleBytes = 32;

    /**
     * Optional bank/row model (off by default to match the paper's
     * flat 70 ns random-access channel): accesses that hit the open
     * row of their bank see rowHitLatency instead of accessLatency.
     * DRAMsim-style fidelity for the ablation bench.
     */
    bool bankModel = false;
    std::uint32_t banks = 8;
    std::uint32_t rowBytes = 2048;
    Tick rowHitLatency = 30 * ticksPerNs;
};

/**
 * A single off-chip memory channel.
 */
class DramChannel
{
  public:
    explicit DramChannel(const DramConfig &cfg);

    /**
     * Issue a read of @p bytes at @p addr beginning no earlier than
     * @p when. @return the tick at which the data is available
     * on-chip.
     */
    Tick read(Tick when, Addr addr, std::uint32_t bytes);

    /**
     * Issue a (posted) write of @p bytes at @p addr beginning no
     * earlier than @p when. @return the tick at which the channel
     * accepted the last beat; nothing normally waits on this.
     */
    Tick write(Tick when, Addr addr, std::uint32_t bytes);

    const DramConfig &config() const { return cfg; }

    std::uint64_t readBytes() const { return rdBytes; }
    std::uint64_t writeBytes() const { return wrBytes; }
    std::uint64_t totalBytes() const { return rdBytes + wrBytes; }
    std::uint64_t readAccesses() const { return rdCount; }
    std::uint64_t writeAccesses() const { return wrCount; }

    /** Channel busy time, for saturation diagnostics. */
    Tick busyTicks() const { return channel.busyTicks(); }

    /** Occupancy for @p bytes (rounded up to whole granules). */
    Tick occupancyFor(std::uint32_t bytes) const;

    /** Earliest tick a new channel reservation could start. */
    Tick nextFreeHint() const { return channel.nextFree(); }

    std::uint64_t rowHits() const { return numRowHits; }
    std::uint64_t rowMisses() const { return numRowMisses; }

    /**
     * Attach the system fault injector (null to detach). Reads then
     * sample the SECDED ECC model: a corrected single-bit flip adds
     * eccCorrectLatency, a detected double-bit flip adds a granule
     * re-read (or throws, when configured fatal).
     */
    void setFaultInjector(FaultInjector *fi) { faults = fi; }

  private:
    /** Effective access latency for @p addr (row model aware). */
    Tick latencyFor(Addr addr);

    DramConfig cfg;
    Resource channel;
    FaultInjector *faults = nullptr;
    Tick ticksPerGranule;
    std::vector<Addr> openRow; ///< per-bank open row (bank model)
    std::uint64_t rdBytes = 0;
    std::uint64_t wrBytes = 0;
    std::uint64_t rdCount = 0;
    std::uint64_t wrCount = 0;
    std::uint64_t numRowHits = 0;
    std::uint64_t numRowMisses = 0;
};

} // namespace cmpmem

#endif // CMPMEM_MEM_DRAM_HH
