#include "mem/l2_cache.hh"

#include <cassert>
#include <string>

#include "sim/log.hh"
#include "sim/sim_error.hh"

namespace cmpmem
{

L2Cache::L2Cache(const L2Config &c, DramChannel &dram_channel)
    : cfg(c), dram(dram_channel)
{
    if (cfg.banks == 0 || (cfg.banks & (cfg.banks - 1)) != 0)
        throwSimError(SimErrorKind::Config,
                      "L2 bank count must be a power of two");
    if (cfg.sizeBytes % cfg.banks != 0)
        throwSimError(SimErrorKind::Config,
                      "L2 size must divide evenly across banks");

    CacheGeometry geom;
    geom.sizeBytes = cfg.sizeBytes / cfg.banks;
    geom.assoc = cfg.assoc;
    geom.lineBytes = cfg.lineBytes;
    for (std::uint32_t b = 0; b < cfg.banks; ++b) {
        // Salt the (BIP) seed per bank so banks don't make lock-step
        // bimodal choices; irrelevant to the other policies.
        ReplacementConfig repl = cfg.repl;
        repl.seed += b;
        bankArray.push_back(std::make_unique<Bank>(
            geom, repl, "l2_bank" + std::to_string(b)));
    }
}

int
L2Cache::bankFor(Addr line) const
{
    return int((line / cfg.lineBytes) & (cfg.banks - 1));
}

void
L2Cache::handleVictim(Tick when, const CacheArray::Victim &victim)
{
    if (victim.valid && victim.dirty) {
        dram.write(when, victim.addr, cfg.lineBytes);
        ++numWbToDram;
    }
}

Tick
L2Cache::readLine(Tick when, Addr line, bool &hit)
{
    Bank &bank = *bankArray[bankFor(line)];
    Tick start = bank.port.acquire(when, cfg.portOccupancy);
    Tick ready = start + cfg.accessLatency;

    CacheArray::Line *l = bank.tags.lookup(line);
    if (l) {
        hit = true;
        ++numHits;
        bank.tags.touch(*l);
        if (obs)
            obs->l2Read(when, line, true);
        return ready;
    }

    hit = false;
    ++numMisses;
    if (obs)
        obs->l2Read(when, line, false);
    Tick dram_ready = dram.read(ready, line, cfg.lineBytes);

    CacheArray::Victim victim;
    CacheArray::Line &fresh = bank.tags.allocate(line, victim);
    handleVictim(ready, victim);
    fresh.state = MesiState::Exclusive; // clean with respect to DRAM

    // Fill and forward: one more port pass to write the array.
    Tick fill = bank.port.acquire(dram_ready, cfg.portOccupancy);
    return fill + cfg.accessLatency;
}

Tick
L2Cache::writeLine(Tick when, Addr line, std::uint32_t bytes,
                   bool full_line)
{
    assert(bytes <= cfg.lineBytes);
    Bank &bank = *bankArray[bankFor(line)];
    Tick start = bank.port.acquire(when, cfg.portOccupancy);
    Tick done = start + cfg.accessLatency;

    CacheArray::Line *l = bank.tags.lookup(line);
    if (l) {
        ++numHits;
        bank.tags.touch(*l);
        l->state = MesiState::Modified;
        if (obs)
            obs->l2Write(when, line, full_line, true);
        return done;
    }

    ++numMisses;
    if (obs)
        obs->l2Write(when, line, full_line, false);
    if (!full_line) {
        // Partial-line write to a missing line: refill from DRAM
        // first (read-modify-write), then install dirty.
        done = dram.read(done, line, cfg.lineBytes);
    } else {
        ++numRefillsAvoided;
    }

    CacheArray::Victim victim;
    CacheArray::Line &fresh = bank.tags.allocate(line, victim);
    handleVictim(done, victim);
    fresh.state = MesiState::Modified;
    return done;
}

std::string
L2Cache::diagnose() const
{
    std::string out = strformat(
        "hits=%llu misses=%llu, writebacks-to-dram=%llu, "
        "refills-avoided=%llu", (unsigned long long)numHits,
        (unsigned long long)numMisses, (unsigned long long)numWbToDram,
        (unsigned long long)numRefillsAvoided);
    for (std::size_t b = 0; b < bankArray.size(); ++b) {
        out += strformat("\nbank %zu: port next free at tick %llu", b,
                         (unsigned long long)
                             bankArray[b]->port.nextFree());
    }
    return out;
}

std::uint64_t
L2Cache::drainDirty()
{
    std::uint64_t drained = 0;
    for (auto &bank : bankArray) {
        drained += bank->tags.forEachDirty([&](Addr) {
            dram.write(dram.nextFreeHint(), Addr(0), cfg.lineBytes);
            ++numWbToDram;
        });
    }
    return drained;
}

} // namespace cmpmem
