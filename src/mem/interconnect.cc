#include "mem/interconnect.hh"

#include <cassert>
#include <string>

namespace cmpmem
{

LocalBus::LocalBus(const InterconnectConfig &cfg, int cluster_id)
    : channel("bus" + std::to_string(cluster_id), cfg.busWidthBytes,
              cfg.busBeat),
      latency(cfg.busLatencyCycles * cfg.busBeat)
{
}

Tick
LocalBus::transfer(Tick when, std::uint32_t bytes)
{
    Tick start = channel.acquireTransfer(when, bytes);
    return start + channel.transferTicks(bytes) + latency;
}

Crossbar::Crossbar(const InterconnectConfig &cfg, int clusters)
    : latency(cfg.xbarLatency)
{
    assert(clusters > 0);
    inPorts.reserve(clusters);
    outPorts.reserve(clusters);
    for (int c = 0; c < clusters; ++c) {
        inPorts.emplace_back("xbar_in" + std::to_string(c),
                             cfg.xbarWidthBytes, cfg.xbarBeat);
        outPorts.emplace_back("xbar_out" + std::to_string(c),
                              cfg.xbarWidthBytes, cfg.xbarBeat);
    }
}

Tick
Crossbar::sendFromCluster(Tick when, int src_cluster, std::uint32_t bytes)
{
    auto &port = inPorts.at(src_cluster);
    Tick start = port.acquireTransfer(when, bytes);
    return start + port.transferTicks(bytes) + latency;
}

Tick
Crossbar::deliverToCluster(Tick when, int dst_cluster, std::uint32_t bytes)
{
    auto &port = outPorts.at(dst_cluster);
    Tick start = port.acquireTransfer(when, bytes);
    return start + port.transferTicks(bytes) + latency;
}

std::uint64_t
Crossbar::bytesMoved() const
{
    std::uint64_t total = 0;
    for (const auto &p : inPorts)
        total += p.bytesMoved();
    for (const auto &p : outPorts)
        total += p.bytesMoved();
    return total;
}

} // namespace cmpmem
