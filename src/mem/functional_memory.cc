#include "mem/functional_memory.hh"

#include <algorithm>
#include <cassert>

#include "sim/log.hh"

namespace cmpmem
{

std::uint8_t *
FunctionalMemory::pageFor(Addr addr)
{
    Addr base = addr & ~(pageBytes - 1);
    auto it = pages.find(base);
    if (it == pages.end()) {
        auto page = std::make_unique<std::uint8_t[]>(pageBytes);
        std::memset(page.get(), 0, pageBytes);
        it = pages.emplace(base, std::move(page)).first;
    }
    return it->second.get();
}

const std::uint8_t *
FunctionalMemory::pageForRead(Addr addr) const
{
    Addr base = addr & ~(pageBytes - 1);
    auto it = pages.find(base);
    return it == pages.end() ? nullptr : it->second.get();
}

void
FunctionalMemory::read(Addr addr, void *dst, std::size_t size) const
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (size > 0) {
        Addr offset = addr & (pageBytes - 1);
        std::size_t chunk =
            std::min<std::size_t>(size, pageBytes - offset);
        const std::uint8_t *page = pageForRead(addr);
        if (page)
            std::memcpy(out, page + offset, chunk);
        else
            std::memset(out, 0, chunk); // untouched memory reads zero
        out += chunk;
        addr += chunk;
        size -= chunk;
    }
}

void
FunctionalMemory::write(Addr addr, const void *src, std::size_t size)
{
    auto *in = static_cast<const std::uint8_t *>(src);
    while (size > 0) {
        Addr offset = addr & (pageBytes - 1);
        std::size_t chunk =
            std::min<std::size_t>(size, pageBytes - offset);
        std::memcpy(pageFor(addr) + offset, in, chunk);
        in += chunk;
        addr += chunk;
        size -= chunk;
    }
}

Addr
FunctionalMemory::alloc(std::size_t size, std::size_t align)
{
    assert(align > 0 && (align & (align - 1)) == 0 &&
           "alignment must be a power of two");
    Addr base = (brk + align - 1) & ~Addr(align - 1);
    brk = base + size;
    return base;
}

} // namespace cmpmem
