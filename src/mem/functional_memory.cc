#include "mem/functional_memory.hh"

#include <algorithm>
#include <cassert>

namespace cmpmem
{

std::uint8_t *
FunctionalMemory::pageFor(Addr addr)
{
    Addr base = addr & ~(pageBytes - 1);
    if (base >= allocBase && base - allocBase < region.size())
        return region.data() + (base - allocBase);

    TransEntry &ent = trans[(base >> pageShift) & (transSlots - 1)];
    if (ent.base == base)
        return ent.ptr;

    auto it = pages.find(base);
    if (it == pages.end()) {
        auto page = std::make_unique<std::uint8_t[]>(pageBytes);
        std::memset(page.get(), 0, pageBytes);
        it = pages.emplace(base, std::move(page)).first;
    }
    ent.base = base;
    ent.ptr = it->second.get();
    return ent.ptr;
}

const std::uint8_t *
FunctionalMemory::pageForRead(Addr addr) const
{
    Addr base = addr & ~(pageBytes - 1);
    if (base >= allocBase && base - allocBase < region.size())
        return region.data() + (base - allocBase);

    TransEntry &ent = trans[(base >> pageShift) & (transSlots - 1)];
    if (ent.base == base)
        return ent.ptr;

    auto it = pages.find(base);
    if (it == pages.end())
        return nullptr; // do not cache misses: the page may appear later
    ent.base = base;
    ent.ptr = it->second.get();
    return ent.ptr;
}

void
FunctionalMemory::readSlow(Addr addr, void *dst, std::size_t size) const
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (size > 0) {
        Addr offset = addr & (pageBytes - 1);
        std::size_t chunk =
            std::min<std::size_t>(size, pageBytes - offset);
        const std::uint8_t *page = pageForRead(addr);
        if (page)
            std::memcpy(out, page + offset, chunk);
        else
            std::memset(out, 0, chunk); // untouched memory reads zero
        out += chunk;
        addr += chunk;
        size -= chunk;
    }
}

void
FunctionalMemory::writeSlow(Addr addr, const void *src, std::size_t size)
{
    auto *in = static_cast<const std::uint8_t *>(src);
    while (size > 0) {
        Addr offset = addr & (pageBytes - 1);
        std::size_t chunk =
            std::min<std::size_t>(size, pageBytes - offset);
        std::memcpy(pageFor(addr) + offset, in, chunk);
        in += chunk;
        addr += chunk;
        size -= chunk;
    }
}

Addr
FunctionalMemory::alloc(std::size_t size, std::size_t align)
{
    assert(align > 0 && (align & (align - 1)) == 0 &&
           "alignment must be a power of two");
    Addr base = (brk + align - 1) & ~Addr(align - 1);
    brk = base + size;

    if (brk - allocBase > region.size()) {
        // Grow geometrically, page-granular, so repeated small allocs
        // amortize the copy the vector resize implies.
        std::size_t need = brk - allocBase;
        std::size_t grown = std::max(need, 2 * region.size());
        grown = (grown + pageBytes - 1) & ~std::size_t(pageBytes - 1);
        region.resize(grown); // zero-fills: untouched memory reads zero

        // Migrate sparse pages the region now covers, so addresses a
        // workload wrote before this alloc keep their values.
        Addr end = allocBase + region.size();
        for (auto it = pages.begin(); it != pages.end();) {
            if (it->first >= allocBase && it->first < end) {
                std::memcpy(region.data() + (it->first - allocBase),
                            it->second.get(), pageBytes);
                it = pages.erase(it);
            } else {
                ++it;
            }
        }
        // Migrated pages were freed; drop any cached translations.
        trans.fill(TransEntry{});
    }
    return base;
}

} // namespace cmpmem
