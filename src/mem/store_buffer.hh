/**
 * @file
 * Per-core store buffer.
 *
 * The paper's cores buffer store misses so that loads can bypass
 * them ("Each core includes a store-buffer that allows loads to
 * bypass store misses. As a result, the consistency model is weak.").
 * A store that misses (or needs an upgrade) is parked here while its
 * ownership transaction is in flight; the core only stalls when the
 * buffer is full, and that time is the "Store" component of the
 * paper's execution-time breakdown.
 *
 * Host-side layout (DESIGN.md §18): the pending-line set is a flat
 * vector sized to the (single-digit) capacity at construction —
 * membership is a linear scan over contiguous Addr words, which beats
 * any hash map at these sizes, and steady-state insert/complete never
 * allocates.
 */

#ifndef CMPMEM_MEM_STORE_BUFFER_HH
#define CMPMEM_MEM_STORE_BUFFER_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/callback.hh"
#include "sim/diagnosable.hh"
#include "sim/inline_function.hh"
#include "sim/types.hh"

namespace cmpmem
{

class StoreBuffer : public Diagnosable
{
  public:
    using SpaceWaiter = TickCallback;

    /** Passive observer: (inserted, line) on insert/complete. */
    using Observer = InlineFunction<void(bool inserted, Addr line), 16>;

    /** Hook invoked with the line as each entry drains (complete()). */
    using DrainHook = InlineFunction<void(Addr line), 16>;

    explicit StoreBuffer(std::size_t capacity = 8);

    /** Attach a coherence-checker observer (null to detach). */
    void setObserver(Observer o) { obs = std::move(o); }

    /**
     * Attach the owning controller's drain hook (micro-path
     * invalidation; see l1_controller.hh). Fires before the
     * space-waiter so the controller sees a consistent view.
     */
    void setDrainHook(DrainHook h) { drainHook = std::move(h); }

    bool full() const { return lines.size() >= cap; }
    bool empty() const { return lines.empty(); }
    std::size_t occupancy() const { return lines.size(); }

    /** Is a buffered store to this line already pending? */
    bool contains(Addr line) const
    {
        return std::find(lines.begin(), lines.end(), line) != lines.end();
    }

    /**
     * Park a store to @p line. Stores to a line already pending are
     * merged by the caller (contains() check) and never reach here.
     * @pre !full() && !contains(line)
     */
    void insert(Addr line);

    /**
     * The ownership transaction for @p line finished at @p when;
     * free the entry and, if the core was blocked on a full buffer,
     * wake it.
     */
    void complete(Addr line, Tick when);

    /**
     * Block until a slot frees. @pre full(). The waiter is invoked
     * with the tick at which the slot became available.
     */
    void waitForSpace(SpaceWaiter waiter);

    std::uint64_t inserts() const { return numInserts; }
    std::uint64_t fullStalls() const { return numFullStalls; }

    std::string diagName() const override { return "store-buffer"; }

    /** Parked store lines (sorted) and whether a core is blocked. */
    std::string diagnose() const override;

  private:
    std::size_t cap;
    Observer obs;
    DrainHook drainHook;
    std::vector<Addr> lines; ///< pending lines; unordered set semantics
    SpaceWaiter spaceWaiter;
    std::uint64_t numInserts = 0;
    std::uint64_t numFullStalls = 0;
};

} // namespace cmpmem

#endif // CMPMEM_MEM_STORE_BUFFER_HH
