/**
 * @file
 * The flat functional backing store for the simulated global address
 * space, plus a bump allocator workloads use to lay out their data.
 *
 * Timing and data are deliberately decoupled in cmpmem: caches and
 * local stores model *timing and coherence metadata*, while values
 * live here. All paper workloads are data-race-free (they
 * synchronize through locks/barriers/task queues), so functional
 * accesses applied in core-issue order observe the same values a
 * data-carrying cache hierarchy would.
 */

#ifndef CMPMEM_MEM_FUNCTIONAL_MEMORY_HH
#define CMPMEM_MEM_FUNCTIONAL_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <unordered_map>

#include "sim/types.hh"

namespace cmpmem
{

/**
 * Sparse, page-granular byte-addressable memory.
 *
 * Pages materialize zero-filled on first touch; the simulated address
 * space is effectively 2^64 bytes while host memory usage tracks the
 * workload footprint.
 */
class FunctionalMemory
{
  public:
    static constexpr Addr pageBytes = 4096;

    FunctionalMemory() = default;
    FunctionalMemory(const FunctionalMemory &) = delete;
    FunctionalMemory &operator=(const FunctionalMemory &) = delete;

    void read(Addr addr, void *dst, std::size_t size) const;
    void write(Addr addr, const void *src, std::size_t size);

    /** Typed convenience accessors for trivially copyable values. */
    template <typename T>
    T
    read(Addr addr) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value;
        read(addr, &value, sizeof(T));
        return value;
    }

    template <typename T>
    void
    write(Addr addr, const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        write(addr, &value, sizeof(T));
    }

    /**
     * Allocate @p size bytes aligned to @p align from the bump
     * allocator.
     *
     * The first allocation starts at a non-zero base so that address
     * zero can serve as a null sentinel in workload data structures.
     */
    Addr alloc(std::size_t size, std::size_t align = 64);

    /** Total bytes handed out by alloc(). */
    Addr allocated() const { return brk - allocBase; }

    /** Number of materialized pages (for tests / footprint checks). */
    std::size_t pageCount() const { return pages.size(); }

  private:
    using Page = std::unique_ptr<std::uint8_t[]>;

    std::uint8_t *pageFor(Addr addr);
    const std::uint8_t *pageForRead(Addr addr) const;

    static constexpr Addr allocBase = 0x10000;

    std::unordered_map<Addr, Page> pages;
    Addr brk = allocBase;
};

} // namespace cmpmem

#endif // CMPMEM_MEM_FUNCTIONAL_MEMORY_HH
