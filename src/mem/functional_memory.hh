/**
 * @file
 * The flat functional backing store for the simulated global address
 * space, plus a bump allocator workloads use to lay out their data.
 *
 * Timing and data are deliberately decoupled in cmpmem: caches and
 * local stores model *timing and coherence metadata*, while values
 * live here. All paper workloads are data-race-free (they
 * synchronize through locks/barriers/task queues), so functional
 * accesses applied in core-issue order observe the same values a
 * data-carrying cache hierarchy would.
 *
 * Every simulated load/store lands here, so the lookup cost is part
 * of the host-time access fast path (DESIGN.md §13). Two layers keep
 * the common case hash-free:
 *
 *  - the bump-allocated range lives in one contiguous, page-aligned
 *    region; accesses inside it are a bounds check and a memcpy;
 *  - accesses outside it go through a small direct-mapped
 *    page-translation cache (last-N page pointers) in front of the
 *    sparse page map.
 *
 * Neither layer is architecturally visible: values and zero-fill
 * semantics are identical to the plain map.
 */

#ifndef CMPMEM_MEM_FUNCTIONAL_MEMORY_HH
#define CMPMEM_MEM_FUNCTIONAL_MEMORY_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace cmpmem
{

/**
 * Sparse, page-granular byte-addressable memory.
 *
 * Pages materialize zero-filled on first touch; the simulated address
 * space is effectively 2^64 bytes while host memory usage tracks the
 * workload footprint.
 */
class FunctionalMemory
{
  public:
    static constexpr Addr pageBytes = 4096;

    FunctionalMemory() = default;
    FunctionalMemory(const FunctionalMemory &) = delete;
    FunctionalMemory &operator=(const FunctionalMemory &) = delete;

    void
    read(Addr addr, void *dst, std::size_t size) const
    {
        // Fast path: wholly inside the contiguous bump region.
        if (addr >= allocBase && addr - allocBase < region.size() &&
            size <= region.size() - (addr - allocBase)) {
            std::memcpy(dst, region.data() + (addr - allocBase), size);
            return;
        }
        readSlow(addr, dst, size);
    }

    void
    write(Addr addr, const void *src, std::size_t size)
    {
        if (addr >= allocBase && addr - allocBase < region.size() &&
            size <= region.size() - (addr - allocBase)) {
            std::memcpy(region.data() + (addr - allocBase), src, size);
            return;
        }
        writeSlow(addr, src, size);
    }

    /** Typed convenience accessors for trivially copyable values. */
    template <typename T>
    T
    read(Addr addr) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value;
        read(addr, &value, sizeof(T));
        return value;
    }

    template <typename T>
    void
    write(Addr addr, const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        write(addr, &value, sizeof(T));
    }

    /**
     * Allocate @p size bytes aligned to @p align from the bump
     * allocator.
     *
     * The first allocation starts at a non-zero base so that address
     * zero can serve as a null sentinel in workload data structures.
     * The allocated range is backed by the contiguous region; sparse
     * pages a workload already wrote inside the newly covered range
     * migrate into it, so growth never changes observed values.
     */
    Addr alloc(std::size_t size, std::size_t align = 64);

    /** Total bytes handed out by alloc(). */
    Addr allocated() const { return brk - allocBase; }

    /**
     * Number of materialized pages, counting the contiguous region
     * at page granularity (for tests / footprint checks).
     */
    std::size_t
    pageCount() const
    {
        return pages.size() + region.size() / pageBytes;
    }

  private:
    using Page = std::unique_ptr<std::uint8_t[]>;

    /** Page-granular chunk loops for accesses outside the region. */
    void readSlow(Addr addr, void *dst, std::size_t size) const;
    void writeSlow(Addr addr, const void *src, std::size_t size);

    std::uint8_t *pageFor(Addr addr);
    const std::uint8_t *pageForRead(Addr addr) const;

    static constexpr Addr allocBase = 0x10000;
    static constexpr Addr pageShift = 12;
    static_assert(Addr(1) << pageShift == pageBytes);

    /**
     * Direct-mapped page-translation cache over the sparse map: one
     * {page base, host pointer} pair per slot, indexed by page
     * number. Only materialized map pages are cached (misses still
     * hash; untouched pages read zero without materializing), and
     * map pages are never freed while the memory lives, so positive
     * entries stay valid until region growth migrates the page —
     * alloc() invalidates the cache then.
     */
    struct TransEntry
    {
        Addr base = ~Addr(0); ///< page base; ~0 = empty slot
        std::uint8_t *ptr = nullptr;
    };
    static constexpr std::size_t transSlots = 16;

    std::unordered_map<Addr, Page> pages;
    mutable std::array<TransEntry, transSlots> trans;

    /** Contiguous backing for [allocBase, allocBase+region.size()). */
    std::vector<std::uint8_t> region;
    Addr brk = allocBase;
};

} // namespace cmpmem

#endif // CMPMEM_MEM_FUNCTIONAL_MEMORY_HH
