/**
 * @file
 * Latency+occupancy resource model for buses, ports, and channels.
 *
 * cmpmem models interconnect and memory-channel contention with
 * reservation resources rather than flit-level networks: a
 * transaction acquires each resource on its path for an occupancy
 * proportional to the bytes moved, and later transactions queue
 * behind it. This captures exactly the contention effects the paper
 * studies (bus arbitration, crossbar port serialization, memory
 * channel saturation) at a fraction of the simulation cost.
 */

#ifndef CMPMEM_MEM_RESOURCE_HH
#define CMPMEM_MEM_RESOURCE_HH

#include <cstdint>
#include <deque>
#include <string>

#include "sim/types.hh"

namespace cmpmem
{

/**
 * A serially shared resource scheduled at interval granularity.
 *
 * Transactions walk their whole path at issue time, which means they
 * reserve *future* slots (a miss reserves the response beat on its
 * bus ~100 ns ahead). A single next-free cursor would make such a
 * future reservation block the idle gap before it and serialize
 * unrelated transactions; the busy-interval list with first-fit gap
 * search keeps the resource available in those gaps. Intervals far
 * in the past (beyond any possible issue-time skew) are pruned, so
 * the list stays short.
 */
class Resource
{
  public:
    explicit Resource(std::string name = "resource");

    /**
     * Reserve the resource for @p occupancy ticks, no earlier than
     * @p earliest.
     *
     * @return the tick at which the reservation begins; the caller's
     *         transaction completes at the returned tick plus its own
     *         latency/occupancy as appropriate.
     */
    Tick acquire(Tick earliest, Tick occupancy);

    /** End of the last reservation made so far. */
    Tick nextFree() const;

    /** Total reserved (busy) ticks, for utilization statistics. */
    Tick busyTicks() const { return busy; }

    /** Total ticks transactions spent waiting for the resource. */
    Tick waitTicks() const { return waited; }

    std::uint64_t acquisitions() const { return count; }

    const std::string &name() const { return label; }

    void reset();

  private:
    struct Interval
    {
        Tick start;
        Tick end;
    };

    /** Reservations older than this can no longer conflict. */
    static constexpr Tick pruneHorizon = 10 * ticksPerUs;

    void prune(Tick earliest);

    std::string label;
    std::deque<Interval> busyList;
    Tick busy = 0;
    Tick waited = 0;
    std::uint64_t count = 0;
};

/**
 * A bandwidth-style resource: converts byte counts into occupancy
 * given a width (bytes moved per beat) and a beat time.
 */
class ChannelResource : public Resource
{
  public:
    ChannelResource(std::string name, std::uint32_t width_bytes,
                    Tick beat_ticks);

    /** Reserve for a transfer of @p bytes; returns reservation start. */
    Tick acquireTransfer(Tick earliest, std::uint64_t bytes);

    /** Occupancy in ticks for a transfer of @p bytes. */
    Tick transferTicks(std::uint64_t bytes) const;

    std::uint64_t bytesMoved() const { return totalBytes; }

  private:
    std::uint32_t width;
    Tick beat;
    std::uint64_t totalBytes = 0;
};

} // namespace cmpmem

#endif // CMPMEM_MEM_RESOURCE_HH
