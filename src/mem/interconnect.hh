/**
 * @file
 * The hierarchical on-chip interconnect of Figure 1: a wide
 * bidirectional bus per 4-core cluster and a global crossbar
 * connecting clusters to the L2 banks.
 *
 * Per the paper's Section 5.3 methodology, the interconnect runs in
 * its own fixed clock domain: scaling the core frequency does not
 * change on-chip network bandwidth or latency.
 */

#ifndef CMPMEM_MEM_INTERCONNECT_HH
#define CMPMEM_MEM_INTERCONNECT_HH

#include <cstdint>
#include <vector>

#include "mem/resource.hh"
#include "sim/types.hh"

namespace cmpmem
{

/** Interconnect parameters (Table 2 defaults). */
struct InterconnectConfig
{
    /** Cluster bus: 32 bytes wide, 2-cycle latency after arbitration. */
    std::uint32_t busWidthBytes = 32;
    Cycles busLatencyCycles = 2;
    Tick busBeat = 1250; ///< bus clock period (800 MHz fixed domain)

    /** Global crossbar: 16-byte ports, 2.5 ns pipelined latency. */
    std::uint32_t xbarWidthBytes = 16;
    Tick xbarLatency = 2500; ///< ps
    Tick xbarBeat = 1250;    ///< ps per 16-byte beat per port

    /** Coherence request/response message size on the buses. */
    std::uint32_t requestBytes = 8;
};

/**
 * One cluster's local bus.
 */
class LocalBus
{
  public:
    LocalBus(const InterconnectConfig &cfg, int cluster_id);

    /**
     * Arbitrate for the bus and move @p bytes.
     * @return the tick the transfer (including bus latency) completes.
     */
    Tick transfer(Tick when, std::uint32_t bytes);

    std::uint64_t bytesMoved() const { return channel.bytesMoved(); }
    Tick busyTicks() const { return channel.busyTicks(); }
    std::uint64_t transfers() const { return channel.acquisitions(); }

  private:
    ChannelResource channel;
    Tick latency;
};

/**
 * The global crossbar: one input and one output port per cluster and
 * per L2 bank. Port pairs serialize traffic per endpoint; distinct
 * endpoints transfer concurrently (that is the crossbar property the
 * paper relies on to avoid centralized-arbitration bottlenecks).
 */
class Crossbar
{
  public:
    Crossbar(const InterconnectConfig &cfg, int clusters);

    /**
     * Move @p bytes from cluster @p src_cluster into the crossbar
     * fabric (toward the L2 / another cluster).
     * @return completion tick including the pipelined latency.
     */
    Tick sendFromCluster(Tick when, int src_cluster, std::uint32_t bytes);

    /**
     * Move @p bytes out of the fabric to cluster @p dst_cluster.
     */
    Tick deliverToCluster(Tick when, int dst_cluster, std::uint32_t bytes);

    std::uint64_t bytesMoved() const;
    int clusters() const { return int(inPorts.size()); }

  private:
    std::vector<ChannelResource> inPorts;
    std::vector<ChannelResource> outPorts;
    Tick latency;
};

} // namespace cmpmem

#endif // CMPMEM_MEM_INTERCONNECT_HH
