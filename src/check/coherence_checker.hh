/**
 * @file
 * Runtime MESI invariant checker.
 *
 * The checker is a passive observer: L1 controllers, the coherence
 * fabric, MSHR files, store buffers, and the L2 report events into it
 * through null-guarded hooks, and it maintains a shadow copy of the
 * global coherence state. It verifies:
 *
 *  - single-writer / multiple-reader: for any line, at most one
 *    coherent L1 holds it Modified or Exclusive, and an M/E copy
 *    never coexists with Shared copies elsewhere;
 *  - shadow agreement: each cache's real tag state matches the state
 *    the observed transition stream implies (audited at end of run,
 *    which is what catches states mutated behind the checker's back);
 *  - writeback pairing: every L1 writeback announced to the fabric is
 *    followed by a full-line L2 write of the same line (the design's
 *    L2 is non-inclusive, so classic L1-subset-of-L2 inclusion does
 *    not hold; see DESIGN.md "Verification");
 *  - no duplicate MSHR entries or store-buffer entries for one line;
 *  - data-value integrity: a golden copy of each stored line is
 *    captured from FunctionalMemory at store/atomic issue and
 *    compared against FunctionalMemory again at writeback and at the
 *    final audit, so any unobserved mutation of tracked data (a
 *    modelling bug that would silently skew results) is flagged.
 *
 * One modelling artifact is tolerated by design. The fabric makes all
 * snoop decisions synchronously at request-issue ("walk") time, while
 * cache arrays are updated later at install time; two transactions on
 * one line whose [walk, install] windows overlap therefore cannot see
 * each other, and can leave e.g. two Exclusive copies resident (the
 * benign false-sharing behaviour discussed in DESIGN.md — data values
 * live in FunctionalMemory, so no wrong value can propagate). The
 * checker distinguishes this from genuine snoop failures: a conflict
 * is excused when the conflicting copy settled *after* this
 * transaction's walk (the overlap itself), when it is the tainted
 * settled partner of an earlier excusal (the fabric's SWMR-based
 * shortcuts can carry a stale partner through later walks), or when
 * any excused/tainted copy of the line was resident at walk time
 * (those same shortcuts, taken on an artifact copy, blind the walk
 * to innocent copies elsewhere). A conflict on a line with no
 * artifact history means the snoop logic really failed, and is
 * reported. Excused copies are marked and excluded from later SWMR
 * accounting until they are invalidated.
 *
 * Violations never abort by default (CheckerConfig::failFast): they
 * are counted and the first maxReportedViolations are formatted with
 * the event-queue timestamp, core id, line address, and a ring-buffer
 * trace of the last transitions on that line, so a failure is
 * debuggable from the test log without rerunning.
 *
 * The checker allocates nothing on the simulated machine and never
 * touches the event queue, so attaching it cannot change simulated
 * timing; when it is not attached (the default) every hook is a
 * single pointer test.
 */

#ifndef CMPMEM_CHECK_COHERENCE_CHECKER_HH
#define CMPMEM_CHECK_COHERENCE_CHECKER_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/cache_array.hh"
#include "mem/functional_memory.hh"
#include "mem/l2_cache.hh"
#include "sim/types.hh"

namespace cmpmem
{

struct CheckerConfig
{
    /** Transitions kept per line for the violation trace. */
    std::size_t traceDepth = 8;

    /** panic() on the first violation instead of counting. */
    bool failFast = false;

    /** Cap on fully formatted violation reports (counting is exact). */
    std::size_t maxReportedViolations = 16;
};

class CoherenceChecker : public L2Cache::Observer
{
  public:
    /** Why a shadow state changed (for the trace). */
    enum class Cause : std::uint8_t
    {
        Fill,            ///< line installed by a fetch
        StoreHit,        ///< store retired into an owned line
        Upgrade,         ///< S->M ownership upgrade
        PfsAllocate,     ///< non-allocating store validated the line
        AtomicHit,       ///< atomic RMW on an owned line
        SnoopDowngrade,  ///< remote read snoop, M/E -> S
        SnoopInvalidate, ///< remote ownership snoop, -> I
        Evict,           ///< frame reclaimed for another line
        Writeback,       ///< dirty line pushed toward the L2
        Drain,           ///< end-of-run dirty drain, M -> E
        Forged,          ///< state mutated behind the checker's back
    };

    static const char *to_string(Cause c);

    CoherenceChecker(FunctionalMemory &mem, std::uint32_t line_bytes,
                     const CheckerConfig &cfg = {});

    /**
     * Register one L1. @p coherent mirrors L1Config::coherent: the
     * streaming model's non-coherent caches legitimately hold
     * overlapping E/M copies, so they are excluded from the SWMR
     * check (all other checks still apply).
     */
    void attachL1(int core, const CacheArray *tags, bool coherent);

    //
    // Observer hooks. All are O(1)-ish host work and must never
    // interact with simulated time.
    //

    /** A cache line state changed on core @p core. */
    void onTransition(Tick t, int core, Addr line, MesiState from,
                      MesiState to, Cause cause);

    /**
     * A store or atomic wrote the functional memory inside @p line
     * (core < 0 for L2-side remote atomics). Captures the golden
     * copy used by the writeback/audit differential.
     */
    void onStoreData(Tick t, int core, Addr line);

    /** An L1 announced a dirty writeback of @p line to the fabric. */
    void onWriteback(Tick t, int core, Addr line);

    void onMshrAllocate(Tick t, int core, Addr line);
    void onMshrComplete(Tick t, int core, Addr line);
    void onSbInsert(Tick t, int core, Addr line);
    void onSbComplete(Tick t, int core, Addr line);

    // L2Cache::Observer
    void l2Read(Tick t, Addr line, bool hit) override;
    void l2Write(Tick t, Addr line, bool full_line, bool hit) override;

    /**
     * End-of-run (or any-quiesce-point) sweep: walks every attached
     * cache's real tags, checks them against the shadow state and
     * SWMR, and re-runs the data differential for every tracked
     * line. This is the check that catches forged/unobserved state.
     * @return number of violations found by this sweep.
     */
    std::uint64_t audit(Tick t);

    std::uint64_t violations() const { return numViolations; }
    std::uint64_t eventsObserved() const { return numEvents; }

    /** Conflicts excused as issue-time-snoop overlap (diagnostic). */
    std::uint64_t overlapsExcused() const { return numOverlaps; }

    /** Formatted reports of the first violations (empty when clean). */
    const std::string &report() const { return reportText; }

    /** The ring-buffer transition trace for one line. */
    std::string traceFor(Addr line) const;

  private:
    struct TraceRec
    {
        Tick t;
        int core;
        MesiState from;
        MesiState to;
        Cause cause;
    };

    /** One core's view of one line. */
    struct Copy
    {
        MesiState state = MesiState::Invalid;
        Tick stateTick = 0; ///< when the current state was established
        Tick walkTick = 0;  ///< issue time of the creating transaction
        bool excused = false; ///< overlap artifact; skip in SWMR
        /**
         * This copy was the settled partner of an excused overlap.
         * The fabric's SWMR-based shortcuts (e.g. skipping the global
         * invalidation broadcast after consuming a local owner) can
         * then leave it resident through later walks, so conflicts
         * against it are excused until it is invalidated.
         */
        bool tainted = false;
    };

    struct LineShadow
    {
        std::vector<Copy> copies;       ///< per attached core
        std::vector<std::uint8_t> gold; ///< golden data; empty=untracked
        std::deque<TraceRec> trace;
        /**
         * Latest tick at which an excused/tainted copy of this line
         * was consumed by a snoop. A walk at or before this tick may
         * have hit the fabric's owner shortcut on an artifact copy
         * (invalidate the local owner, skip the global broadcast),
         * so its snoop coverage cannot be trusted; conflicts raised
         * by such a walk's install are excused.
         */
        Tick artifactTick = 0;
    };

    struct CoreShadow
    {
        const CacheArray *tags = nullptr;
        bool coherent = true;
        std::unordered_map<Addr, Tick> mshrLines; ///< line -> alloc tick
        std::unordered_map<Addr, bool> sbLines;
    };

    LineShadow &shadow(Addr line);
    bool knownCore(int core) const;
    void record(LineShadow &ls, Tick t, int core, Addr line,
                MesiState from, MesiState to, Cause cause);
    void checkConflicts(Tick t, int core, Addr line, LineShadow &ls);
    void checkSwmr(Tick t, Addr line, const LineShadow &ls);
    void checkGolden(Tick t, int core, Addr line, const char *where);
    void violation(Tick t, int core, Addr line, const std::string &what);

    FunctionalMemory &fmem;
    std::uint32_t lineBytes;
    CheckerConfig cfg;
    std::vector<CoreShadow> coreShadows;
    std::unordered_map<Addr, LineShadow> lineShadows;

    /** In-flight fabric writeback awaiting its paired L2 write. */
    bool wbPending = false;
    Addr wbLine = 0;
    int wbCore = -1;

    std::uint64_t numViolations = 0;
    std::uint64_t numEvents = 0;
    std::uint64_t numOverlaps = 0;
    std::string reportText;
};

} // namespace cmpmem

#endif // CMPMEM_CHECK_COHERENCE_CHECKER_HH
