#include "check/coherence_checker.hh"

#include <algorithm>
#include <cstdio>
#include <map>

#include "sim/log.hh"
#include "sim/sim_error.hh"

namespace cmpmem
{

namespace
{

std::string
hex(Addr a)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(a));
    return buf;
}

bool
owned(MesiState s)
{
    return s == MesiState::Modified || s == MesiState::Exclusive;
}

/** Transitions that acquire or strengthen a copy via the fabric/core
 *  (as opposed to losing it to a snoop or eviction). */
bool
acquiring(CoherenceChecker::Cause c)
{
    using Cause = CoherenceChecker::Cause;
    return c == Cause::Fill || c == Cause::Upgrade ||
           c == Cause::PfsAllocate || c == Cause::StoreHit ||
           c == Cause::AtomicHit;
}

/** Acquisitions that start a fresh fabric transaction (have a walk). */
bool
transactional(CoherenceChecker::Cause c)
{
    using Cause = CoherenceChecker::Cause;
    return c == Cause::Fill || c == Cause::Upgrade ||
           c == Cause::PfsAllocate;
}

} // namespace

const char *
CoherenceChecker::to_string(Cause c)
{
    switch (c) {
      case Cause::Fill: return "fill";
      case Cause::StoreHit: return "store-hit";
      case Cause::Upgrade: return "upgrade";
      case Cause::PfsAllocate: return "pfs-allocate";
      case Cause::AtomicHit: return "atomic-hit";
      case Cause::SnoopDowngrade: return "snoop-downgrade";
      case Cause::SnoopInvalidate: return "snoop-invalidate";
      case Cause::Evict: return "evict";
      case Cause::Writeback: return "writeback";
      case Cause::Drain: return "drain";
      case Cause::Forged: return "forged";
    }
    return "?";
}

CoherenceChecker::CoherenceChecker(FunctionalMemory &mem,
                                   std::uint32_t line_bytes,
                                   const CheckerConfig &config)
    : fmem(mem), lineBytes(line_bytes), cfg(config)
{
}

void
CoherenceChecker::attachL1(int core, const CacheArray *tags, bool coherent)
{
    if (core >= int(coreShadows.size()))
        coreShadows.resize(core + 1);
    coreShadows[core].tags = tags;
    coreShadows[core].coherent = coherent;
}

bool
CoherenceChecker::knownCore(int core) const
{
    return core >= 0 && core < int(coreShadows.size());
}

CoherenceChecker::LineShadow &
CoherenceChecker::shadow(Addr line)
{
    LineShadow &ls = lineShadows[line];
    if (ls.copies.size() < coreShadows.size())
        ls.copies.resize(coreShadows.size());
    return ls;
}

void
CoherenceChecker::record(LineShadow &ls, Tick t, int core, Addr line,
                         MesiState from, MesiState to, Cause cause)
{
    (void)line;
    if (ls.trace.size() >= cfg.traceDepth)
        ls.trace.pop_front();
    ls.trace.push_back({t, core, from, to, cause});
}

std::string
CoherenceChecker::traceFor(Addr line) const
{
    auto it = lineShadows.find(line);
    if (it == lineShadows.end() || it->second.trace.empty())
        return "    (no transitions recorded)\n";
    std::string out;
    for (const TraceRec &r : it->second.trace) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "    @%llu core %d: %s -> %s (%s)\n",
                      static_cast<unsigned long long>(r.t), r.core,
                      cmpmem::to_string(r.from), cmpmem::to_string(r.to),
                      to_string(r.cause));
        out += buf;
    }
    return out;
}

void
CoherenceChecker::violation(Tick t, int core, Addr line,
                            const std::string &what)
{
    ++numViolations;
    if (numViolations <= cfg.maxReportedViolations) {
        char head[96];
        std::snprintf(head, sizeof(head),
                      "coherence violation @%llu core %d line ",
                      static_cast<unsigned long long>(t), core);
        reportText += head + hex(line) + ": " + what + "\n" +
                      "  last transitions for " + hex(line) + ":\n" +
                      traceFor(line);
    }
    if (cfg.failFast)
        throw SimError(SimErrorKind::Check,
                       "coherence checker: fail-fast violation",
                       reportText);
}

void
CoherenceChecker::checkConflicts(Tick t, int core, Addr line,
                                 LineShadow &ls)
{
    // The fabric decides snoops at transaction-issue ("walk") time,
    // but arrays change at install time; a conflicting copy that
    // materialised after this transaction's walk could not have been
    // seen and is the documented overlap artifact. A conflict with a
    // copy that was already settled at (or before) the walk means the
    // snoop logic really failed -- with exceptions that are all
    // downstream of the same artifact. The fabric's shortcuts assume
    // SWMR: a store walk that consumes a local owner skips the global
    // invalidation broadcast, and a read walk satisfied by a local
    // supplier never probes the other clusters. Once overlapping
    // copies coexist, those shortcuts can be taken *on an artifact
    // copy*, blinding the walk to perfectly innocent copies
    // elsewhere. So a conflict is excused when (a) the other copy
    // settled after this walk (the original overlap), (b) the other
    // copy is the tainted settled partner of an earlier excusal, or
    // (c) an artifact copy of this line was resident when this walk
    // issued -- its mere presence means the walk's coverage cannot
    // be trusted. Ties use >= / <= because same-tick event order is
    // not visible here; this errs toward excusing.
    Copy &me = ls.copies[core];
    bool residue = me.walkTick <= ls.artifactTick;
    for (std::size_t o = 0; !residue && o < ls.copies.size(); ++o) {
        const Copy &c = ls.copies[o];
        if (int(o) != core && c.state != MesiState::Invalid &&
            (c.excused || c.tainted))
            residue = true;
    }
    for (std::size_t o = 0; o < ls.copies.size(); ++o) {
        if (int(o) == core || !coreShadows[o].coherent)
            continue;
        Copy &other = ls.copies[o];
        if (other.state == MesiState::Invalid || other.excused)
            continue;
        if (!owned(me.state) && !owned(other.state))
            continue; // S alongside S is fine
        if (other.stateTick >= me.walkTick || other.tainted ||
            residue) {
            if (!me.excused) {
                me.excused = true;
                ++numOverlaps;
            }
            other.tainted = true;
            continue;
        }
        violation(t, core, line,
                  std::string("copy acquired as ") +
                      cmpmem::to_string(me.state) + " conflicts with " +
                      cmpmem::to_string(other.state) + " on core " +
                      std::to_string(o) +
                      " that was already settled when this "
                      "transaction issued (walk @" +
                      std::to_string(me.walkTick) +
                      ", other settled @" +
                      std::to_string(other.stateTick) +
                      "): the snoop failed to downgrade/invalidate it");
    }
}

void
CoherenceChecker::checkSwmr(Tick t, Addr line, const LineShadow &ls)
{
    int owner = -1;
    int owners = 0;
    int sharers = 0;
    for (std::size_t c = 0; c < ls.copies.size(); ++c) {
        if (!coreShadows[c].coherent || ls.copies[c].excused)
            continue;
        switch (ls.copies[c].state) {
          case MesiState::Modified:
          case MesiState::Exclusive:
            ++owners;
            owner = int(c);
            break;
          case MesiState::Shared:
            ++sharers;
            break;
          case MesiState::Invalid:
            break;
        }
    }
    if (owners > 1) {
        violation(t, owner, line,
                  "single-writer violated: " + std::to_string(owners) +
                      " cores hold the line Modified/Exclusive");
    } else if (owners == 1 && sharers > 0) {
        violation(t, owner, line,
                  "owned copy (M/E on core " + std::to_string(owner) +
                      ") coexists with " + std::to_string(sharers) +
                      " Shared copies");
    }
}

void
CoherenceChecker::checkGolden(Tick t, int core, Addr line,
                              const char *where)
{
    auto it = lineShadows.find(line);
    if (it == lineShadows.end() || it->second.gold.empty())
        return;
    std::vector<std::uint8_t> cur(lineBytes);
    fmem.read(line, cur.data(), lineBytes);
    if (cur != it->second.gold) {
        std::uint32_t off = 0;
        while (off < lineBytes && cur[off] == it->second.gold[off])
            ++off;
        violation(t, core, line,
                  std::string("data differential failed at ") + where +
                      ": functional memory diverges from the golden "
                      "copy at byte offset " +
                      std::to_string(off) +
                      " (an unobserved write mutated tracked data)");
    }
}

void
CoherenceChecker::onTransition(Tick t, int core, Addr line,
                               MesiState from, MesiState to, Cause cause)
{
    ++numEvents;
    if (!knownCore(core))
        return;
    LineShadow &ls = shadow(line);
    Copy &me = ls.copies[core];
    if (me.state != from) {
        violation(t, core, line,
                  std::string("transition claims previous state ") +
                      cmpmem::to_string(from) + " but the shadow holds " +
                      cmpmem::to_string(me.state));
    }
    record(ls, t, core, line, from, to, cause);

    // A snoop that consumes an artifact copy may have taken the
    // fabric's owner shortcut on it (see checkConflicts); remember
    // when, so installs from walks up to this point are excused.
    if ((me.excused || me.tainted) &&
        (to == MesiState::Invalid || cause == Cause::SnoopDowngrade))
        ls.artifactTick = std::max(ls.artifactTick, t);

    me.state = to;
    me.stateTick = t;
    if (to == MesiState::Invalid) {
        me.excused = false;
        me.tainted = false;
        me.walkTick = t;
    } else if (transactional(cause)) {
        // A fresh fabric transaction created/strengthened this copy;
        // its snoop decisions were made at MSHR-allocation time.
        me.excused = false;
        me.tainted = false;
        auto it = coreShadows[core].mshrLines.find(line);
        me.walkTick = it != coreShadows[core].mshrLines.end()
                          ? it->second : t;
    } else if (cause == Cause::SnoopDowngrade) {
        // A remote transaction saw and downgraded this copy, but if
        // the copy was excused, the overlap partner it conflicts with
        // is typically still resident (the downgrading walk supplies
        // from one owner, not both): the excusal must persist until
        // this copy is invalidated, or the leftover pair would be
        // misreported as a snoop failure.
        me.walkTick = t;
    }
    // StoreHit/AtomicHit are silent upgrades on an owned copy: they
    // inherit the owning transaction's walk tick and excusal.

    if (coreShadows[core].coherent && to != MesiState::Invalid &&
        acquiring(cause))
        checkConflicts(t, core, line, ls);
    checkSwmr(t, line, ls);
}

void
CoherenceChecker::onStoreData(Tick t, int core, Addr line)
{
    (void)t;
    (void)core;
    ++numEvents;
    LineShadow &ls = shadow(line);
    ls.gold.resize(lineBytes);
    fmem.read(line, ls.gold.data(), lineBytes);
}

void
CoherenceChecker::onWriteback(Tick t, int core, Addr line)
{
    ++numEvents;
    if (wbPending) {
        violation(t, wbCore, wbLine,
                  "writeback pairing violated: the L1 writeback never "
                  "produced a full-line L2 write before the next "
                  "writeback of line " + hex(line));
    }
    wbPending = true;
    wbLine = line;
    wbCore = core;
    LineShadow &ls = shadow(line);
    record(ls, t, core, line, MesiState::Modified, MesiState::Modified,
           Cause::Writeback);
    checkGolden(t, core, line, "writeback");
}

void
CoherenceChecker::l2Read(Tick t, Addr line, bool hit)
{
    (void)t;
    (void)line;
    (void)hit;
    ++numEvents;
}

void
CoherenceChecker::l2Write(Tick t, Addr line, bool full_line, bool hit)
{
    (void)hit;
    ++numEvents;
    if (wbPending && line == wbLine && full_line)
        wbPending = false;
    else if (wbPending && full_line) {
        violation(t, wbCore, wbLine,
                  "writeback pairing violated: the fabric announced a "
                  "writeback of this line but the L2 received line " +
                      hex(line) + " instead");
        wbPending = false;
    }
}

void
CoherenceChecker::onMshrAllocate(Tick t, int core, Addr line)
{
    ++numEvents;
    if (!knownCore(core))
        return;
    if (!coreShadows[core].mshrLines.emplace(line, t).second) {
        violation(t, core, line,
                  "duplicate MSHR allocation: a fill for this line is "
                  "already outstanding on this core");
    }
}

void
CoherenceChecker::onMshrComplete(Tick t, int core, Addr line)
{
    ++numEvents;
    if (!knownCore(core))
        return;
    if (coreShadows[core].mshrLines.erase(line) == 0) {
        violation(t, core, line,
                  "MSHR completion for a line with no outstanding "
                  "allocation on this core");
    }
}

void
CoherenceChecker::onSbInsert(Tick t, int core, Addr line)
{
    ++numEvents;
    if (!knownCore(core))
        return;
    if (!coreShadows[core].sbLines.emplace(line, true).second) {
        violation(t, core, line,
                  "duplicate store-buffer entry: stores to a pending "
                  "line must coalesce, not re-insert");
    }
}

void
CoherenceChecker::onSbComplete(Tick t, int core, Addr line)
{
    ++numEvents;
    if (!knownCore(core))
        return;
    if (coreShadows[core].sbLines.erase(line) == 0) {
        violation(t, core, line,
                  "store-buffer completion for a line that was never "
                  "inserted on this core");
    }
}

std::uint64_t
CoherenceChecker::audit(Tick t)
{
    const std::uint64_t before = numViolations;

    if (wbPending) {
        violation(t, wbCore, wbLine,
                  "writeback pairing violated: an L1 writeback was "
                  "still awaiting its L2 write at audit time");
        wbPending = false;
    }

    // Real tag state per (line, core), from the actual arrays.
    // std::map so violation reports come out in address order.
    std::map<Addr, std::vector<std::pair<int, MesiState>>> actual;
    for (std::size_t c = 0; c < coreShadows.size(); ++c) {
        const CacheArray *tags = coreShadows[c].tags;
        if (!tags)
            continue;
        tags->forEachValid([&](const CacheArray::Line &l) {
            actual[l.tag].emplace_back(int(c), l.state);
        });
    }

    // Shadow agreement: every real valid line must be what the
    // observed transition stream implies, and vice versa.
    for (const auto &[line, holders] : actual) {
        LineShadow &ls = shadow(line);
        for (const auto &[core, st] : holders) {
            Copy &me = ls.copies[core];
            if (me.state != st) {
                violation(t, core, line,
                          std::string("audit: real tag state ") +
                              cmpmem::to_string(st) +
                              " disagrees with the observed-transition "
                              "shadow state " +
                              cmpmem::to_string(me.state));
                record(ls, t, core, line, me.state, st, Cause::Forged);
                // Resync so the SWMR pass below judges reality; a
                // forged copy is never excused, so it counts.
                me.state = st;
                me.excused = false;
                me.tainted = false;
            }
        }
    }
    for (auto &[line, ls] : lineShadows) {
        for (std::size_t c = 0; c < ls.copies.size(); ++c) {
            if (ls.copies[c].state == MesiState::Invalid ||
                !coreShadows[c].tags)
                continue;
            const CacheArray::Line *l = coreShadows[c].tags->lookup(line);
            if (!l || l->tag != line || !l->valid()) {
                violation(t, int(c), line,
                          std::string("audit: shadow holds ") +
                              cmpmem::to_string(ls.copies[c].state) +
                              " but the real cache no longer has the "
                              "line");
                ls.copies[c].state = MesiState::Invalid;
                ls.copies[c].excused = false;
                ls.copies[c].tainted = false;
            }
        }
    }

    // SWMR over the real tags (catches forged states that never went
    // through onTransition), then the data differential for every
    // tracked line.
    for (const auto &[line, holders] : actual) {
        const LineShadow &ls = shadow(line);
        int owner = -1;
        int owners = 0;
        int sharers = 0;
        for (const auto &[core, st] : holders) {
            if (!coreShadows[core].coherent || ls.copies[core].excused)
                continue;
            if (st == MesiState::Modified || st == MesiState::Exclusive) {
                ++owners;
                owner = core;
            } else if (st == MesiState::Shared) {
                ++sharers;
            }
        }
        if (owners > 1) {
            violation(t, owner, line,
                      "audit: single-writer violated in the real tags: " +
                          std::to_string(owners) + " M/E holders");
        } else if (owners == 1 && sharers > 0) {
            violation(t, owner, line,
                      "audit: M/E copy on core " + std::to_string(owner) +
                          " coexists with " + std::to_string(sharers) +
                          " Shared copies in the real tags");
        }
    }
    for (const auto &[line, ls] : lineShadows) {
        if (!ls.gold.empty())
            checkGolden(t, -1, line, "final audit");
    }

    return numViolations - before;
}

} // namespace cmpmem
