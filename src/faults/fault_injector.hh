/**
 * @file
 * Seeded fault sampler shared by the DRAM channel, the coherence
 * fabric, and the DMA engines of one simulation.
 *
 * One injector per CmpSystem (constructed only when
 * SystemConfig::faults.enabled): clients hold a plain pointer that is
 * null in fault-free runs, so the disabled path is a single pointer
 * test. All sampling happens in simulation walk order on the
 * simulation's own thread, which keeps fault placement a pure
 * function of (seed, fault config, workload) — see fault_config.hh.
 */

#ifndef CMPMEM_FAULTS_FAULT_INJECTOR_HH
#define CMPMEM_FAULTS_FAULT_INJECTOR_HH

#include "faults/fault_config.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace cmpmem
{

class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &cfg);

    const FaultConfig &config() const { return cfg; }
    const FaultStats &stats() const { return st; }

    /**
     * Sample the ECC outcome of one DRAM read and return the extra
     * latency the access pays (0 on a clean read). Throws
     * SimErrorKind::Fault on a detected double-bit error when
     * fatalOnDoubleBit is set.
     */
    Tick dramReadPenalty(Addr addr);

    /** Does this bus/crossbar transfer get NACKed? (counts on true) */
    bool netNack();

    /** Backoff before re-arbitrating NACKed attempt @p attempt (1-based). */
    Tick netBackoff(int attempt) const
    {
        return cfg.netRetryBackoff * Tick(attempt);
    }

    void noteNetRetry() { ++st.netRetries; }

    /** Does this DMA access fail? (counts on true) */
    bool dmaFault();

    Tick dmaBackoff(int attempt) const
    {
        return cfg.dmaRetryBackoff * Tick(attempt);
    }

    void noteDmaRetry() { ++st.dmaRetries; }

  private:
    FaultConfig cfg;
    Rng rng;
    FaultStats st;
};

} // namespace cmpmem

#endif // CMPMEM_FAULTS_FAULT_INJECTOR_HH
