#include "faults/fault_injector.hh"

#include "sim/sim_error.hh"

namespace cmpmem
{

FaultConfig
stressFaultConfig(std::uint64_t seed)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.seed = seed;
    fc.dramBitFlipProb = 1e-3;
    fc.dramDoubleBitFraction = 0.05;
    fc.netNackProb = 2e-3;
    fc.netMaxRetries = 16;
    fc.dmaFaultProb = 1e-3;
    fc.dmaMaxRetries = 8;
    return fc;
}

FaultInjector::FaultInjector(const FaultConfig &config)
    : cfg(config), rng(cfg.seed * 0x5851f42d4c957f2dULL + 0x14057b7eULL)
{
}

Tick
FaultInjector::dramReadPenalty(Addr addr)
{
    if (cfg.dramBitFlipProb <= 0)
        return 0;
    if (rng.nextDouble() >= cfg.dramBitFlipProb)
        return 0;
    ++st.dramFlips;
    if (cfg.dramDoubleBitFraction > 0 &&
        rng.nextDouble() < cfg.dramDoubleBitFraction) {
        ++st.eccDetected;
        if (cfg.dramFatalOnDoubleBit) {
            throwSimError(SimErrorKind::Fault,
                          "uncorrectable DRAM error: SECDED detected a "
                          "double-bit flip at 0x%llx",
                          static_cast<unsigned long long>(addr));
        }
        // Transient: a re-read of the granule recovers clean data.
        return cfg.eccRetryLatency;
    }
    ++st.eccCorrected;
    return cfg.eccCorrectLatency;
}

bool
FaultInjector::netNack()
{
    if (cfg.netNackProb <= 0)
        return false;
    if (rng.nextDouble() >= cfg.netNackProb)
        return false;
    ++st.netNacks;
    return true;
}

bool
FaultInjector::dmaFault()
{
    if (cfg.dmaFaultProb <= 0)
        return false;
    if (rng.nextDouble() >= cfg.dmaFaultProb)
        return false;
    ++st.dmaFaults;
    return true;
}

} // namespace cmpmem
