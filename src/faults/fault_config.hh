/**
 * @file
 * Configuration for deterministic fault injection and the liveness
 * watchdog (the robustness knobs of SystemConfig; see DESIGN.md §11).
 *
 * Faults are sampled from one seeded xoshiro256** stream owned by the
 * simulation's FaultInjector, so a given (fault seed, fault config,
 * workload seed) triple reproduces bit-identically — including across
 * serial and parallel sweep runs. Each fault class only consumes
 * random draws when its probability is non-zero, so enabling one
 * class never perturbs the sample sequence of another.
 */

#ifndef CMPMEM_FAULTS_FAULT_CONFIG_HH
#define CMPMEM_FAULTS_FAULT_CONFIG_HH

#include <cstdint>

#include "sim/types.hh"

namespace cmpmem
{

struct FaultConfig
{
    /** Master switch; when false no injector is constructed and the
     *  simulated timing is bit-identical to a build without hooks. */
    bool enabled = false;

    /** Seed of the injector's private RNG stream. */
    std::uint64_t seed = 1;

    //
    // DRAM transient bit flips, behind a SECDED ECC model: a
    // single-bit flip is corrected in-line for a small latency
    // penalty; a double-bit flip is detected but uncorrectable, so
    // the channel re-reads the granule (transient faults clear on
    // retry) — or, with fatalOnDoubleBit, raises a machine-check
    // style SimError instead.
    //
    double dramBitFlipProb = 0.0;     ///< per DRAM read access
    double dramDoubleBitFraction = 0.05; ///< flips that hit two bits
    Tick eccCorrectLatency = 5 * ticksPerNs;
    Tick eccRetryLatency = 70 * ticksPerNs; ///< re-read on detect
    bool dramFatalOnDoubleBit = false;

    //
    // Interconnect message NACKs: a bus or crossbar transfer is
    // refused and re-arbitrated after a linear backoff; exhausting
    // the retry budget raises SimErrorKind::Fault.
    //
    double netNackProb = 0.0;         ///< per bus/crossbar transfer
    int netMaxRetries = 8;
    Tick netRetryBackoff = 20 * ticksPerNs; ///< base, linear in attempt

    //
    // DMA transfer failures: one line-granule uncore access fails
    // and the engine re-issues it after a backoff.
    //
    double dmaFaultProb = 0.0;        ///< per line-granule access
    int dmaMaxRetries = 4;
    Tick dmaRetryBackoff = 50 * ticksPerNs;
};

/**
 * Canonical moderate-rate configuration used by the `--faults` bench
 * flag and the fault-injection stress tests: every class active at a
 * rate that exercises the recovery paths without drowning the run.
 */
FaultConfig stressFaultConfig(std::uint64_t seed);

/** Counters accumulated by the injector (surface in RunStats). */
struct FaultStats
{
    std::uint64_t dramFlips = 0;    ///< reads that saw a flip
    std::uint64_t eccCorrected = 0; ///< single-bit, fixed in line
    std::uint64_t eccDetected = 0;  ///< double-bit, re-read/fatal
    std::uint64_t netNacks = 0;     ///< transfers refused
    std::uint64_t netRetries = 0;   ///< re-arbitrations performed
    std::uint64_t dmaFaults = 0;    ///< accesses that failed
    std::uint64_t dmaRetries = 0;   ///< re-issues performed
};

/**
 * Liveness watchdog budgets for one simulation (all off by default;
 * the guarded run mode only engages when some budget is set, so
 * default runs take the plain EventQueue::run() path).
 */
struct WatchdogConfig
{
    /** Simulated-tick budget from the start of the run (0 = off). */
    Tick maxTicks = 0;

    /** Host thread-CPU-seconds budget (0 = off). */
    double maxHostSeconds = 0;

    /**
     * Forward-progress check: every this many executed events, the
     * instructions-retired probe must have advanced (0 = off). A
     * budget catches runaway kernels; the progress check catches
     * livelocks where events fire but no core retires anything.
     */
    std::uint64_t progressCheckEvents = 0;

    bool engaged() const
    {
        return maxTicks != 0 || maxHostSeconds > 0 ||
               progressCheckEvents != 0;
    }
};

} // namespace cmpmem

#endif // CMPMEM_FAULTS_FAULT_CONFIG_HH
