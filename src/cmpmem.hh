/**
 * @file
 * Umbrella header: the public API of the cmpmem library.
 *
 * Quick start:
 *
 *   #include "cmpmem.hh"
 *   using namespace cmpmem;
 *
 *   SystemConfig cfg = makeConfig(8, MemModel::CC);
 *   RunResult r = runWorkload("fir", cfg);
 *   printf("exec %.3f ms, energy %s\n", r.stats.execSeconds() * 1e3,
 *          r.energy.format().c_str());
 *
 * Custom workloads subclass Workload (workloads/workload.hh) and
 * write their kernels as C++20 coroutines against Context
 * (core/context.hh).
 */

#ifndef CMPMEM_CMPMEM_HH
#define CMPMEM_CMPMEM_HH

#include "core/context.hh"
#include "core/core.hh"
#include "core/sync.hh"
#include "energy/energy_model.hh"
#include "faults/fault_config.hh"
#include "faults/fault_injector.hh"
#include "harness/bench_compare.hh"
#include "harness/experiment.hh"
#include "harness/json.hh"
#include "harness/runner.hh"
#include "harness/supervisor.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "sim/clock.hh"
#include "sim/diagnosable.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/sim_error.hh"
#include "sim/task.hh"
#include "sim/types.hh"
#include "system/cmp_system.hh"
#include "system/config.hh"
#include "workloads/kernels_common.hh"
#include "workloads/registry.hh"
#include "workloads/workload.hh"

#endif // CMPMEM_CMPMEM_HH
