/**
 * @file
 * Energy accounting: turns the counters of a RunStats into the
 * per-component breakdown of the paper's Figure 4 (core, I-cache,
 * D-cache/local memory, network, L2, DRAM), including both dynamic
 * and static (leakage) energy, with clock gating on idle cores.
 */

#ifndef CMPMEM_ENERGY_ENERGY_MODEL_HH
#define CMPMEM_ENERGY_ENERGY_MODEL_HH

#include <string>

#include "energy/energy_params.hh"

namespace cmpmem
{

struct RunStats;

/** Per-component energy in millijoules. */
struct EnergyBreakdown
{
    double coreMj = 0;
    double icacheMj = 0;
    double dstoreMj = 0; ///< D-caches (CC) or local stores + 8 KB caches
    double networkMj = 0;
    double l2Mj = 0;
    double dramMj = 0;

    double
    totalMj() const
    {
        return coreMj + icacheMj + dstoreMj + networkMj + l2Mj + dramMj;
    }

    std::string format() const;
};

class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params) : p(params) {}

    /** Compute the full breakdown for a finished run. */
    EnergyBreakdown compute(const RunStats &rs) const;

  private:
    EnergyParams p;
};

} // namespace cmpmem

#endif // CMPMEM_ENERGY_ENERGY_MODEL_HH
