/**
 * @file
 * Energy parameters for the 90 nm / 1.0 V process of the paper.
 *
 * The paper derives core energy from Tensilica layouts at 600 MHz in
 * 90 nm, SRAM energies from CACTI 4.1, interconnect energy from Ho,
 * Mai & Horowitz, and DRAM energy from DRAMsim. Those tools are not
 * reproducible here, so this table holds values with the same
 * *structure* (per-access dynamic energies by array size and type,
 * per-byte interconnect and DRAM energies, per-structure leakage) at
 * magnitudes consistent with the published 90 nm literature. The
 * paper's energy results (Figures 4 and 8) are relative comparisons
 * between the two models running identical algorithms, which depend
 * on the *ratios* encoded here: local-store accesses cheaper than
 * tagged cache accesses, tag-only snoop probes far cheaper than full
 * accesses, and DRAM dominating everything per byte.
 */

#ifndef CMPMEM_ENERGY_ENERGY_PARAMS_HH
#define CMPMEM_ENERGY_ENERGY_PARAMS_HH

namespace cmpmem
{

struct EnergyParams
{
    //
    // Dynamic energy, picojoules per event.
    //

    /** Average integer VLIW bundle through the 7-stage pipeline. */
    double coreBundlePj = 140.0;
    /** Additional energy when FP slots are active. */
    double coreFpBundleExtraPj = 110.0;
    /** 16 KB 2-way I-cache fetch. */
    double icacheAccessPj = 28.0;
    /** 32 KB 2-way D-cache access (tag + data). */
    double l1AccessPj = 48.0;
    /** Tag-only probe (coherence snoop). */
    double l1TagProbePj = 9.0;
    /** 8 KB 2-way cache access (streaming model). */
    double smallCacheAccessPj = 22.0;
    /** 24 KB local store access: no tag array, no comparators. */
    double lsAccessPj = 30.0;
    /** Installing a 32-byte line into a first-level array. */
    double lineFillPj = 90.0;
    /** 512 KB 16-way L2 bank access. */
    double l2AccessPj = 310.0;
    /** Cluster bus, per byte moved. */
    double busPjPerByte = 4.0;
    /** Global crossbar, per byte moved. */
    double xbarPjPerByte = 7.0;
    /** Off-chip DRAM, per byte moved (channel + device). */
    double dramPjPerByte = 65.0;
    /** DMA engine overhead per 32-byte access. */
    double dmaAccessPj = 6.0;

    //
    // Prefetcher state machines (CC model, hwPrefetch on). Sized
    // from the structures in prefetch/: the derivation against the
    // published CACTI-style numbers above is logged in
    // EXPERIMENTS.md ("Prefetcher energy derivation").
    //

    /** Stream-table probe: ~12 registers of tags and strides. */
    double streamTableAccessPj = 3.0;
    /** Markov row access: ~3 KB direct-mapped correlation table. */
    double markovTableAccessPj = 11.0;
    /** Stream-buffer CAM probe: 4 buffers x 4 line-address entries. */
    double streamBufferAccessPj = 5.0;

    //
    // Static (leakage) power, milliwatts per structure instance.
    //

    double coreLeakMw = 2.0;
    double icacheLeakMw = 0.45;
    double l1LeakMw = 0.80;        ///< 32 KB D-cache
    double smallCacheLeakMw = 0.25; ///< 8 KB cache
    double lsLeakMw = 0.55;        ///< 24 KB local store
    double l2LeakMw = 9.0;         ///< whole 512 KB L2
    double dramBackgroundMw = 50.0;

    /** Per-core prefetcher leakage, scaled from smallCacheLeakMw
     *  (0.25 mW / 8 KB) by structure size. */
    double streamTableLeakMw = 0.02;  ///< ~0.1 KB of registers
    double markovLeakMw = 0.22;       ///< ~3 KB correlation table
    double streamBufferLeakMw = 0.05; ///< ~0.5 KB of line buffers
};

} // namespace cmpmem

#endif // CMPMEM_ENERGY_ENERGY_PARAMS_HH
