#include "energy/energy_model.hh"

#include <cstdio>

#include "system/cmp_system.hh"

namespace cmpmem
{

namespace
{
constexpr double pjToMj = 1e-9;

/** mW times ticks (ps) -> mJ. */
double
leakMj(double mw, Tick ticks)
{
    return mw * 1e-3 /*W*/ * double(ticks) * 1e-12 /*s*/ * 1e3 /*mJ*/;
}
} // namespace

std::string
EnergyBreakdown::format() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "core=%.3f icache=%.3f dstore=%.3f net=%.3f l2=%.3f "
                  "dram=%.3f total=%.3f (mJ)",
                  coreMj, icacheMj, dstoreMj, networkMj, l2Mj, dramMj,
                  totalMj());
    return buf;
}

EnergyBreakdown
EnergyModel::compute(const RunStats &rs) const
{
    EnergyBreakdown e;
    const SystemConfig &cfg = rs.config;
    const Tick t = rs.execTicks;
    const int n = cfg.cores;
    const bool cc = (cfg.model == MemModel::CC);
    const CoreStats &cs = rs.coreTotal;
    const L1Counters &l1 = rs.l1Total;

    //
    // Cores: dynamic per bundle/instruction plus always-on leakage.
    // Idle (stalled) time is clock gated, so it contributes leakage
    // only.
    //
    double mem_instrs = double(cs.loads + cs.stores + cs.atomics +
                               cs.lsReads + cs.lsWrites);
    e.coreMj += (double(cs.bundles) + mem_instrs) * p.coreBundlePj *
                pjToMj;
    e.coreMj += double(cs.fpBundles) * p.coreFpBundleExtraPj * pjToMj;
    e.coreMj += leakMj(p.coreLeakMw * n, t);

    //
    // Instruction caches.
    //
    e.icacheMj += double(rs.icacheFetches) * p.icacheAccessPj * pjToMj;
    e.icacheMj += leakMj(p.icacheLeakMw * n, t);

    //
    // First-level data storage.
    //
    double l1_access_pj = cc ? p.l1AccessPj : p.smallCacheAccessPj;
    double l1_demand = double(l1.loadHits + l1.loadMisses + l1.storeHits +
                              l1.storeMisses + l1.storeMerged +
                              l1.atomicOps);
    e.dstoreMj += l1_demand * l1_access_pj * pjToMj;
    e.dstoreMj += double(l1.snoopsReceived) * p.l1TagProbePj * pjToMj;
    e.dstoreMj += double(l1.fills + l1.writebacks) * p.lineFillPj * pjToMj;
    if (cc) {
        e.dstoreMj += leakMj(p.l1LeakMw * n, t);
    } else {
        // Local store accesses have no tag overhead.
        e.dstoreMj += double(rs.lsReads + rs.lsWrites) * p.lsAccessPj *
                      pjToMj;
        e.dstoreMj += double(rs.dmaAccesses) * p.dmaAccessPj * pjToMj;
        e.dstoreMj += leakMj((p.lsLeakMw + p.smallCacheLeakMw) * n, t);
    }

    //
    // Hardware prefetcher state (CC only; the streaming model's DMA
    // engines are charged above). The engine is probed on every
    // demand miss (train + predict) and on every useful prefetch
    // (confirmation re-probe); pick the per-probe energy and leakage
    // of whichever structure the config instantiates. Off by
    // default-config construction when hwPrefetch is false, so the
    // default energy numbers are unchanged.
    //
    if (cc && cfg.hwPrefetch) {
        double probe_pj = p.streamTableAccessPj;
        double leak_mw = p.streamTableLeakMw;
        switch (cfg.policy.prefetch) {
          case PrefetchPolicy::Markov:
            probe_pj = p.markovTableAccessPj;
            leak_mw = p.markovLeakMw;
            break;
          case PrefetchPolicy::StreamBuffer:
            probe_pj = p.streamBufferAccessPj;
            leak_mw = p.streamBufferLeakMw;
            break;
          case PrefetchPolicy::Stream:
            break;
        }
        double probes = double(l1.demandMisses()) +
                        double(l1.prefetchesUseful);
        e.dstoreMj += probes * probe_pj * pjToMj;
        e.dstoreMj += leakMj(leak_mw * n, t);
    }

    //
    // On-chip network.
    //
    e.networkMj += double(rs.busBytes) * p.busPjPerByte * pjToMj;
    e.networkMj += double(rs.xbarBytes) * p.xbarPjPerByte * pjToMj;

    //
    // Shared L2.
    //
    e.l2Mj += double(rs.l2Hits + rs.l2Misses) * p.l2AccessPj * pjToMj;
    e.l2Mj += leakMj(p.l2LeakMw, t);

    //
    // Off-chip DRAM.
    //
    e.dramMj += double(rs.dramReadBytes + rs.dramWriteBytes) *
                p.dramPjPerByte * pjToMj;
    e.dramMj += leakMj(p.dramBackgroundMw, t);

    return e;
}

} // namespace cmpmem
