// EnergyParams is a plain aggregate; this translation unit exists so
// the header has a home in the build graph and future validated
// parameter sets (e.g. alternative process nodes) can live here.
#include "energy/energy_params.hh"
